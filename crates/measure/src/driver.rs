//! Stage-granular streaming execution of measurement schemes.
//!
//! [`crate::Scheme::run_onto`] historically ran a whole measurement as an
//! opaque batch: the caller got statistics back only after every sweep
//! finished. The [`SweepDriver`] splits the same measurement into a
//! **resumable iterator of stages**: each [`SweepDriver::step`] executes
//! one scheme-defined unit of work (a disjoint-pair stage for the
//! staged/focused tournaments, one token circulation, one batch of
//! uncoordinated replies) against a persistent event engine, and the
//! partial [`PairwiseStats`] are inspectable between steps. Driving a
//! fresh driver to completion is *bit-identical* to the old batch path —
//! `run_onto` is now exactly that thin wrapper — so callers that do not
//! care about streaming see no change.
//!
//! Streaming exists for one reason: **mid-sweep pruning**. A caller that
//! can already tell from the partial quantiles that a pair will never
//! matter (its endpoints sit outside every node's candidate pool) can
//! drop that pair's remaining probes while the sweep is still in flight
//! via [`SweepDriver::retain_pairs`]. The [`PruneRule`] trait packages
//! that decision, and [`run_pruned`] is the standard loop: evaluate the
//! rule between stages, drop what it condemns, keep stepping. Rules must
//! never condemn incumbent/pinned/deployed pairs — the concrete rule in
//! `cloudia-solver` (`CandidatePruneRule`) enforces this with an explicit
//! protected set.

use std::collections::HashSet;

use cloudia_netsim::Network;

use crate::scheme::{MeasureConfig, MeasurementReport, Scheme, SnapshotTracker};
use crate::stats::PairwiseStats;

/// Canonical unordered-pair key `(low, high)` — the normalization every
/// driver and prune loop agrees on.
pub(crate) fn norm_pair(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// A resumable, stage-granular execution of one measurement run.
///
/// Obtained from [`Scheme::driver`]. The driver owns the event engine and
/// the accumulating statistics; [`SweepDriver::step`] executes the next
/// stage and the accessors expose the partial state between stages.
/// Stepping a driver to exhaustion and then calling
/// [`SweepDriver::finish`] produces the same [`MeasurementReport`] as
/// [`Scheme::run_onto`] — interrupting, inspecting, and resuming never
/// changes the measurement.
pub trait SweepDriver {
    /// Short identifier of the scheme being driven.
    fn scheme_name(&self) -> &'static str;

    /// Executes the next stage. Returns `false` once the schedule is
    /// exhausted or the configured duration limit has been reached (the
    /// driver is then permanently done; further calls keep returning
    /// `false`).
    fn step(&mut self) -> bool;

    /// The statistics accumulated so far (partial while stages remain).
    fn stats(&self) -> &PairwiseStats;

    /// Round trips completed so far by this driver.
    fn round_trips(&self) -> u64;

    /// Simulated milliseconds elapsed so far.
    fn elapsed_ms(&self) -> f64;

    /// The distinct unordered pairs still scheduled for future stages
    /// (pairs already dropped by [`SweepDriver::retain_pairs`] excluded).
    fn remaining_pairs(&self) -> Vec<(u32, u32)>;

    /// Estimated round trips the remaining schedule will spend, ignoring
    /// any duration limit (an upper bound for schemes with randomized
    /// destinations).
    fn planned_remaining(&self) -> u64;

    /// Drops the future probes of every remaining pair for which `keep`
    /// returns `false`. Stages already executed are unaffected; a stage
    /// emptied entirely is skipped without paying its coordination
    /// round. Returns the estimated round trips saved
    /// (`planned_remaining` before − after).
    fn retain_pairs(&mut self, keep: &mut dyn FnMut(u32, u32) -> bool) -> u64;

    /// Consumes the driver into the final report. Valid at any point —
    /// an interrupted run reports whatever it measured.
    fn finish(self: Box<Self>) -> MeasurementReport;
}

/// A mid-sweep pruning policy, evaluated between stages by [`run_pruned`].
///
/// Implementations decide from the *partial* statistics which scheduled
/// pairs have already been proven irrelevant. A rule must never condemn a
/// pair the caller still depends on (incumbent, pinned, or deployed
/// links, links under active suspicion, links owed a staleness refresh) —
/// the driver applies the verdict verbatim.
pub trait PruneRule {
    /// Given the statistics measured so far and the unordered pairs still
    /// scheduled, returns the subset whose remaining probes may be
    /// dropped. An empty vector leaves the schedule untouched.
    fn prune(&self, stats: &PairwiseStats, remaining: &[(u32, u32)]) -> Vec<(u32, u32)>;
}

/// What [`run_pruned`] produced: the ordinary report plus the pruning
/// ledger.
#[derive(Debug, Clone)]
pub struct PrunedReport {
    /// The measurement report (identical in shape to a batch run's).
    pub report: MeasurementReport,
    /// Distinct unordered pairs dropped mid-sweep.
    pub dropped_pairs: usize,
    /// Estimated round trips the pruning saved (sum of
    /// [`SweepDriver::retain_pairs`] returns).
    pub saved_round_trips: u64,
}

/// Drives `scheme` to completion over `net`, evaluating `rule` between
/// stages and dropping whatever it condemns. With a rule that never
/// condemns anything this is bit-identical to [`Scheme::run_onto`].
pub fn run_pruned<S: Scheme + ?Sized>(
    scheme: &S,
    net: &Network,
    cfg: &MeasureConfig,
    stats: PairwiseStats,
    rule: &dyn PruneRule,
) -> PrunedReport {
    let mut driver = scheme.driver(net, cfg, stats);
    let mut dropped: HashSet<(u32, u32)> = HashSet::new();
    let mut saved_round_trips = 0u64;
    loop {
        // Between stages (and before the first one, when accumulated
        // history is available), let the rule inspect the partial
        // statistics.
        if driver.stats().total_samples() > 0 {
            let remaining = driver.remaining_pairs();
            if !remaining.is_empty() {
                let condemned = rule.prune(driver.stats(), &remaining);
                if !condemned.is_empty() {
                    let drop: HashSet<(u32, u32)> =
                        condemned.into_iter().map(|(a, b)| norm_pair(a, b)).collect();
                    let saved = driver.retain_pairs(&mut |a, b| !drop.contains(&norm_pair(a, b)));
                    saved_round_trips += saved;
                    let before = dropped.len();
                    dropped.extend(
                        remaining
                            .iter()
                            .map(|&(a, b)| norm_pair(a, b))
                            .filter(|key| drop.contains(key)),
                    );
                    cloudia_obs::counters(&[
                        ("sweep.prune.dropped_pairs", (dropped.len() - before) as u64),
                        ("sweep.prune.saved_round_trips", saved),
                    ]);
                }
            }
        }
        if !driver.step() {
            break;
        }
    }
    PrunedReport { report: driver.finish(), dropped_pairs: dropped.len(), saved_round_trips }
}

/// An anytime stopping policy, evaluated between stages by
/// [`run_anytime`].
///
/// Where a [`PruneRule`] condemns individual pairs, a `StopRule` ends the
/// *whole stage schedule* early: once the partial statistics prove that
/// every remaining prune/pool decision is already settled — every
/// candidate confidence interval separated from every non-candidate's —
/// further probing cannot change any downstream verdict, so the sweep may
/// stop and bank the remaining round trips. The concrete rule in
/// `cloudia-solver` (`CiStopRule`) demands CI separation at a stated
/// confidence, which is what bounds the realized error of acting on the
/// truncated measurement.
pub trait StopRule {
    /// True once the partial statistics make every remaining decision
    /// stable — additional samples can no longer flip a verdict at the
    /// rule's confidence level.
    fn stable(&self, stats: &PairwiseStats, remaining: &[(u32, u32)]) -> bool;

    /// Pairs that must keep probing even after stability fires (e.g.
    /// deployed links that feed change detectors). Default: none.
    fn must_keep(&self, a: u32, b: u32) -> bool {
        let _ = (a, b);
        false
    }
}

/// What [`run_anytime`] produced: the pruning ledger plus whether the
/// stop rule fired before the schedule ran dry.
#[derive(Debug, Clone)]
pub struct AnytimeReport {
    /// The measurement report (identical in shape to a batch run's).
    pub report: MeasurementReport,
    /// Distinct unordered pairs dropped mid-sweep (pruned or stopped).
    pub dropped_pairs: usize,
    /// Estimated round trips saved by pruning plus the early stop.
    pub saved_round_trips: u64,
    /// True if the stop rule declared stability before the schedule was
    /// exhausted.
    pub stopped_early: bool,
}

/// Drives `scheme` like [`run_pruned`], additionally ending the sweep as
/// soon as `stop` declares every remaining decision stable. On stop, all
/// remaining pairs except [`StopRule::must_keep`] ones are dropped and
/// the driver runs out the (now skeletal) schedule. With a stop rule that
/// never fires this is bit-identical to [`run_pruned`]; with a rule that
/// never fires *and* a prune rule that never condemns, bit-identical to
/// [`crate::Scheme::run_onto`].
pub fn run_anytime<S: Scheme + ?Sized>(
    scheme: &S,
    net: &Network,
    cfg: &MeasureConfig,
    stats: PairwiseStats,
    rule: &dyn PruneRule,
    stop: &dyn StopRule,
) -> AnytimeReport {
    let mut driver = scheme.driver(net, cfg, stats);
    let mut dropped: HashSet<(u32, u32)> = HashSet::new();
    let mut saved_round_trips = 0u64;
    let mut stopped_early = false;
    loop {
        if !stopped_early && driver.stats().total_samples() > 0 {
            let remaining = driver.remaining_pairs();
            if !remaining.is_empty() {
                if stop.stable(driver.stats(), &remaining) {
                    // Stability: every verdict is settled. Drop all
                    // non-essential probing and run out the skeleton.
                    stopped_early = true;
                    let saved = driver.retain_pairs(&mut |a, b| stop.must_keep(a, b));
                    saved_round_trips += saved;
                    let before = dropped.len();
                    dropped.extend(
                        remaining
                            .iter()
                            .map(|&(a, b)| norm_pair(a, b))
                            .filter(|&(a, b)| !stop.must_keep(a, b)),
                    );
                    cloudia_obs::counters(&[
                        ("sweep.anytime.stopped_early", 1),
                        ("sweep.anytime.dropped_pairs", (dropped.len() - before) as u64),
                        ("sweep.anytime.saved_round_trips", saved),
                    ]);
                } else {
                    let condemned = rule.prune(driver.stats(), &remaining);
                    if !condemned.is_empty() {
                        let drop: HashSet<(u32, u32)> =
                            condemned.into_iter().map(|(a, b)| norm_pair(a, b)).collect();
                        let saved =
                            driver.retain_pairs(&mut |a, b| !drop.contains(&norm_pair(a, b)));
                        saved_round_trips += saved;
                        let before = dropped.len();
                        dropped.extend(
                            remaining
                                .iter()
                                .map(|&(a, b)| norm_pair(a, b))
                                .filter(|key| drop.contains(key)),
                        );
                        cloudia_obs::counters(&[
                            ("sweep.prune.dropped_pairs", (dropped.len() - before) as u64),
                            ("sweep.prune.saved_round_trips", saved),
                        ]);
                    }
                }
            }
        }
        if !driver.step() {
            break;
        }
    }
    AnytimeReport {
        report: driver.finish(),
        dropped_pairs: dropped.len(),
        saved_round_trips,
        stopped_early,
    }
}

/// The shared driver of the stage-scheduled schemes ([`crate::Staged`]
/// and [`crate::FocusedScheme`]): a fixed per-sweep schedule of
/// endpoint-disjoint stages, executed with the common stage protocol
/// (every pair keeps one probe outstanding until its per-pair round-trip
/// quota is met), directions alternating across sweeps, one coordinator
/// round between stages. This is the single home of the sweep loop the
/// two schemes used to duplicate.
pub(crate) struct StageDriver<'n> {
    name: &'static str,
    net: &'n Network,
    cfg: MeasureConfig,
    stats: PairwiseStats,
    tracker: SnapshotTracker,
    /// One sweep's schedule: unordered pairs with per-pair round trips.
    stages: Vec<Vec<(u32, u32, usize)>>,
    sweeps: usize,
    coord_overhead_ms: f64,
    sweep: usize,
    stage: usize,
    round_trips: u64,
    /// Simulated clock (ms); stages start here and leave it at their end
    /// plus the coordination round.
    now: f64,
    /// Resolved stage fan-out width (1 = serial).
    workers: usize,
    done: bool,
    tally: StageTally,
}

/// Local telemetry accumulator for one driver run. Stages add plain
/// integers here; the global plane is touched exactly once, when the
/// tally drops with the driver — `sweeps × stages` lock acquisitions
/// (and per-stage span allocations) collapse to one counter batch and
/// one `sweep.run` span, keeping the instrumented hot path within the
/// workspace's overhead budget even on small networks where a stage is
/// only a few simulated round trips of work.
#[derive(Debug, Default)]
struct StageTally {
    stages: u64,
    round_trips: u64,
    sent: u64,
    delivered: u64,
    lost: u64,
    dark: u64,
    /// Stages that fanned out over more than one worker thread.
    parallel_stages: u64,
    /// Widest per-stage fan-out seen this run.
    fanout_width_max: u64,
    /// Wall nanoseconds spent merging per-pair outcomes into the stats.
    merge_ns: u64,
    /// Per-stage merge latencies (ms) of stages that fanned out over
    /// more than one worker, flushed into the `sweep.stage_merge_ms`
    /// histogram in one batch at drop — unlike the summed `merge_ns`
    /// counter, the histogram keeps the shape of the sharded merge.
    /// Serial stages are excluded: small sweeps run thousands of them
    /// and per-stage samples would dominate the telemetry budget, while
    /// the histogram exists to watch the parallel merge specifically.
    merge_ms: Vec<f64>,
    /// P² sketches spilled by the quiet-link horizon this run.
    spilled: u64,
    /// Wall-time span from the first executed stage to driver drop;
    /// `None` until a stage runs (or while telemetry is disabled).
    span: Option<cloudia_obs::SpanGuard>,
}

impl Drop for StageTally {
    fn drop(&mut self) {
        if let Some(span) = &mut self.span {
            span.attr("stages", self.stages);
            span.attr("round_trips", self.round_trips);
            span.attr("sent", self.sent);
            span.attr("lost", self.lost);
            span.attr("dark_pairs", self.dark);
            span.attr("fanout_width_max", self.fanout_width_max);
            span.attr("merge_ns", self.merge_ns);
        }
        if self.stages > 0 {
            cloudia_obs::counters(&[
                ("sweep.stages", self.stages),
                ("sweep.round_trips", self.round_trips),
                ("sweep.messages_sent", self.sent),
                ("sweep.messages_delivered", self.delivered),
                ("sweep.messages_lost", self.lost),
                ("sweep.dark_pairs", self.dark),
                ("sweep.parallel.stages", self.parallel_stages),
                ("sweep.parallel.merge_ns", self.merge_ns),
                ("sweep.sketch_spills", self.spilled),
            ]);
            cloudia_obs::observe_many("sweep.stage_merge_ms", &self.merge_ms);
        }
    }
}

impl<'n> StageDriver<'n> {
    pub(crate) fn new(
        name: &'static str,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
        stages: Vec<Vec<(u32, u32, usize)>>,
        sweeps: usize,
        coord_overhead_ms: f64,
    ) -> Self {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(stats.len(), n, "stats sized for {} instances, network has {n}", stats.len());
        // Auto mode (stage_workers = 0) only fans out when a stage is
        // wide enough to amortize thread spawns; an explicit width is
        // honoured as given (the determinism contract makes any width
        // safe, so tests pin small-stage parallel runs explicitly).
        let workers = match cfg.stage_workers {
            0 => {
                let widest = stages.iter().map(Vec::len).max().unwrap_or(0);
                if widest < 64 {
                    1
                } else {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                }
            }
            w => w,
        };
        Self {
            name,
            net,
            cfg: cfg.clone(),
            stats,
            tracker: SnapshotTracker::new(cfg),
            stages,
            sweeps,
            coord_overhead_ms,
            sweep: 0,
            stage: 0,
            round_trips: 0,
            now: 0.0,
            workers,
            done: false,
            tally: StageTally::default(),
        }
    }

    fn advance_position(&mut self) {
        self.stage += 1;
        if self.stage >= self.stages.len() {
            self.stage = 0;
            self.sweep += 1;
        }
    }

    /// Iterates the remaining `(sweep, stage)` positions' pair lists.
    fn remaining_stages(&self) -> impl Iterator<Item = &[(u32, u32, usize)]> {
        let end = if self.done { self.sweep } else { self.sweeps };
        (self.sweep..end)
            .flat_map(move |s| {
                let start = if s == self.sweep { self.stage } else { 0 };
                self.stages[start..].iter()
            })
            .map(Vec::as_slice)
    }
}

impl SweepDriver for StageDriver<'_> {
    fn scheme_name(&self) -> &'static str {
        self.name
    }

    fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        // Stages emptied by pruning are skipped entirely: no probes, no
        // coordination round.
        while self.sweep < self.sweeps && self.stages.get(self.stage).is_some_and(Vec::is_empty) {
            self.advance_position();
        }
        if self.stages.is_empty() || self.sweep >= self.sweeps {
            self.done = true;
            return false;
        }
        if let Some(limit) = self.cfg.max_duration_ms {
            if self.now >= limit {
                self.done = true;
                return false;
            }
        }
        // Directions alternate across sweeps so both directions of every
        // link get measured.
        if cloudia_obs::enabled() && self.tally.span.is_none() {
            self.tally.span = Some(cloudia_obs::span!("sweep.run", scheme = self.name));
        }
        let pairs = &self.stages[self.stage];
        let directed: Vec<(usize, usize)> = pairs
            .iter()
            .map(|&(a, b, _)| {
                if self.sweep.is_multiple_of(2) {
                    (a as usize, b as usize)
                } else {
                    (b as usize, a as usize)
                }
            })
            .collect();
        let ks: Vec<usize> = pairs.iter().map(|&(_, _, k)| k).collect();
        // One substream seed per pair, derived from the pair's schedule
        // identity rather than drawn from a shared stream: a surviving
        // pair's timeline is the same no matter which *other* pairs a
        // prune rule or dark strike removed from the stage — common
        // random numbers across pruned and unpruned arms, and
        // byte-identical seeded traces at every worker count.
        let (sweep, stage) = (self.sweep, self.stage);
        let seeds: Vec<u64> = directed
            .iter()
            .map(|&(src, dst)| crate::scheme::substream_seed(self.cfg.seed, sweep, stage, src, dst))
            .collect();
        let outcome = crate::scheme::run_stage(
            self.net,
            &self.cfg,
            self.now,
            &directed,
            &ks,
            &seeds,
            self.workers,
            &mut self.stats,
            &mut self.tracker,
        );
        self.round_trips += outcome.round_trips;
        self.now = outcome.end;
        // Telemetry stays local at stage grain: the stage outcome's
        // tallies accumulate in `self.tally` (plain integer adds — no
        // locks, no allocations) and hit the global plane once, when
        // the driver drops.
        if cloudia_obs::enabled() {
            self.tally.stages += 1;
            self.tally.round_trips += outcome.round_trips;
            self.tally.sent += outcome.sent;
            self.tally.delivered += outcome.delivered;
            self.tally.lost += outcome.lost;
            self.tally.dark += outcome.dark.len() as u64;
            self.tally.fanout_width_max = self.tally.fanout_width_max.max(outcome.workers as u64);
            self.tally.merge_ns += outcome.merge_ns;
            if outcome.workers > 1 {
                self.tally.parallel_stages += 1;
                self.tally.merge_ms.push(outcome.merge_ns as f64 / 1e6);
            }
        }
        // Age the stats plane's quiet-time clock — one tick per completed
        // stage — and spill idle sketches if a horizon is configured.
        self.stats.advance_tick();
        if let Some(horizon) = self.cfg.sketch_spill_horizon {
            let spilled = self.stats.spill_quiet(horizon);
            if cloudia_obs::enabled() {
                self.tally.spilled += spilled as u64;
            }
        }
        // Pairs that went dark (retry budget exhausted without one
        // success) are struck from every future stage: re-probing a dead
        // link each sweep would burn the whole retry budget again for
        // nothing, and `remaining_pairs`/`planned_remaining` must report
        // only work that can still complete. A fresh driver (the next
        // epoch) re-attempts them.
        if !outcome.dark.is_empty() {
            let dark: HashSet<(u32, u32)> = outcome
                .dark
                .iter()
                .map(|&pid| norm_pair(directed[pid].0 as u32, directed[pid].1 as u32))
                .collect();
            for stage in &mut self.stages {
                stage.retain(|&(a, b, _)| !dark.contains(&norm_pair(a, b)));
            }
        }
        // Coordinator round before the next stage.
        self.now += self.coord_overhead_ms;
        self.advance_position();
        true
    }

    fn stats(&self) -> &PairwiseStats {
        &self.stats
    }

    fn round_trips(&self) -> u64 {
        self.round_trips
    }

    fn elapsed_ms(&self) -> f64 {
        self.now
    }

    fn remaining_pairs(&self) -> Vec<(u32, u32)> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for stage in self.remaining_stages() {
            for &(a, b, _) in stage {
                if seen.insert((a, b)) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    fn planned_remaining(&self) -> u64 {
        self.remaining_stages().flat_map(|stage| stage.iter()).map(|&(_, _, k)| k as u64).sum()
    }

    fn retain_pairs(&mut self, keep: &mut dyn FnMut(u32, u32) -> bool) -> u64 {
        let before = self.planned_remaining();
        for stage in &mut self.stages {
            stage.retain(|&(a, b, _)| keep(a, b));
        }
        before - self.planned_remaining()
    }

    fn finish(self: Box<Self>) -> MeasurementReport {
        MeasurementReport {
            scheme: self.name,
            elapsed_ms: self.now,
            round_trips: self.round_trips,
            snapshots: self.tracker.snapshots,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FocusedScheme, ProbePlan, Staged};
    use cloudia_netsim::{Cloud, Provider};

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    struct DropAll;
    impl PruneRule for DropAll {
        fn prune(&self, _: &PairwiseStats, remaining: &[(u32, u32)]) -> Vec<(u32, u32)> {
            remaining.to_vec()
        }
    }

    struct KeepAll;
    impl PruneRule for KeepAll {
        fn prune(&self, _: &PairwiseStats, _: &[(u32, u32)]) -> Vec<(u32, u32)> {
            Vec::new()
        }
    }

    #[test]
    fn stepped_driver_equals_batch_run() {
        let net = network(8, 1);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(3, 2);
        let batch = scheme.run(&net, &cfg);
        let mut driver = scheme.driver(&net, &cfg, PairwiseStats::new(8));
        let mut steps = 0;
        while driver.step() {
            steps += 1;
            assert!(driver.round_trips() > 0);
        }
        assert_eq!(steps, 7 * 2, "one step per stage per sweep");
        let report = driver.finish();
        assert_eq!(report.round_trips, batch.round_trips);
        assert_eq!(report.elapsed_ms, batch.elapsed_ms);
        assert_eq!(report.stats.mean_vector(), batch.stats.mean_vector());
    }

    #[test]
    fn keep_all_rule_is_bit_identical_to_run_onto() {
        let net = network(7, 2);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(2, 2);
        let batch = scheme.run(&net, &cfg);
        let pruned = run_pruned(&scheme, &net, &cfg, PairwiseStats::new(7), &KeepAll);
        assert_eq!(pruned.dropped_pairs, 0);
        assert_eq!(pruned.saved_round_trips, 0);
        assert_eq!(pruned.report.round_trips, batch.round_trips);
        assert_eq!(pruned.report.elapsed_ms, batch.elapsed_ms);
        assert_eq!(pruned.report.stats.mean_vector(), batch.stats.mean_vector());
    }

    #[test]
    fn drop_all_rule_stops_after_the_first_prunable_moment() {
        // The rule only sees stats once samples exist, so stage one runs;
        // everything after it is dropped.
        let net = network(6, 3);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(2, 2);
        let full = scheme.run(&net, &cfg);
        let pruned = run_pruned(&scheme, &net, &cfg, PairwiseStats::new(6), &DropAll);
        assert!(pruned.report.round_trips < full.round_trips);
        assert!(pruned.saved_round_trips > 0);
        assert!(pruned.dropped_pairs > 0);
        // Only the first stage's pairs were measured: 3 disjoint pairs,
        // one direction, ks = 2.
        assert_eq!(pruned.report.round_trips, 3 * 2);
    }

    #[test]
    fn retain_pairs_reports_savings_and_remaining_shrinks() {
        let net = network(6, 4);
        let cfg = MeasureConfig::default();
        let mut plan = ProbePlan::new(6);
        plan.add_clique(&[0, 1, 2, 3]);
        let scheme = FocusedScheme::new(plan, 2, 2);
        let mut driver = scheme.driver(&net, &cfg, PairwiseStats::new(6));
        let before = driver.planned_remaining();
        assert_eq!(before, 6 * 2 * 2);
        let saved = driver.retain_pairs(&mut |a, b| !(a == 0 && b == 1));
        assert_eq!(saved, 2 * 2, "pair (0,1): ks 2 over 2 sweeps");
        assert_eq!(driver.planned_remaining(), before - saved);
        assert!(!driver.remaining_pairs().contains(&(0, 1)));
        while driver.step() {}
        let report = driver.finish();
        assert_eq!(report.stats.link(0, 1).count() + report.stats.link(1, 0).count(), 0);
        assert!(report.stats.link(0, 2).count() > 0);
    }

    struct NeverStable;
    impl StopRule for NeverStable {
        fn stable(&self, _: &PairwiseStats, _: &[(u32, u32)]) -> bool {
            false
        }
    }

    /// Declares stability as soon as any samples exist, keeping one pair.
    struct StopKeeping(u32, u32);
    impl StopRule for StopKeeping {
        fn stable(&self, _: &PairwiseStats, _: &[(u32, u32)]) -> bool {
            true
        }
        fn must_keep(&self, a: u32, b: u32) -> bool {
            norm_pair(a, b) == norm_pair(self.0, self.1)
        }
    }

    #[test]
    fn anytime_with_inert_rules_is_bit_identical_to_run_onto() {
        let net = network(7, 2);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(2, 2);
        let batch = scheme.run(&net, &cfg);
        let anytime =
            run_anytime(&scheme, &net, &cfg, PairwiseStats::new(7), &KeepAll, &NeverStable);
        assert!(!anytime.stopped_early);
        assert_eq!(anytime.dropped_pairs, 0);
        assert_eq!(anytime.saved_round_trips, 0);
        assert_eq!(anytime.report.round_trips, batch.round_trips);
        assert_eq!(anytime.report.elapsed_ms, batch.elapsed_ms);
        assert_eq!(anytime.report.stats.mean_vector(), batch.stats.mean_vector());
    }

    #[test]
    fn anytime_stop_drops_everything_but_must_keep_pairs() {
        let net = network(6, 3);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(3, 2);
        let full = scheme.run(&net, &cfg);
        let anytime =
            run_anytime(&scheme, &net, &cfg, PairwiseStats::new(6), &KeepAll, &StopKeeping(0, 1));
        assert!(anytime.stopped_early);
        assert!(anytime.saved_round_trips > 0);
        assert!(anytime.report.round_trips < full.round_trips);
        // The kept pair still completed its full probe quota: 3 round
        // trips per sweep over 2 sweeps (minus any that ran before the
        // stop fired — so at least the post-stop sweeps' worth).
        let kept =
            anytime.report.stats.link(0, 1).count() + anytime.report.stats.link(1, 0).count();
        assert!(kept > 0, "must_keep pair was dropped");
        assert_eq!(kept, full.stats.link(0, 1).count() + full.stats.link(1, 0).count());
    }

    #[test]
    fn finish_mid_run_reports_partial_measurements() {
        let net = network(8, 5);
        let cfg = MeasureConfig::default();
        let scheme = Staged::new(2, 2);
        let mut driver = scheme.driver(&net, &cfg, PairwiseStats::new(8));
        assert!(driver.step());
        assert!(driver.step());
        let partial = driver.round_trips();
        let report = driver.finish();
        assert_eq!(report.round_trips, partial);
        assert!(report.stats.total_samples() > 0);
        let full = scheme.run(&net, &cfg);
        assert!(report.round_trips < full.round_trips);
    }
}

//! # cloudia-measure — pairwise latency measurement
//!
//! Implements §5 of the ClouDiA paper: before searching for a deployment,
//! ClouDiA must estimate the mean round-trip latency of every ordered pair
//! of allocated instances, quickly and without introducing measurement
//! artifacts. Three schemes are provided, in increasing sophistication:
//!
//! * [`TokenPassing`] — one probe in flight globally; perfectly clean but
//!   serial (the accuracy baseline of paper Fig. 4);
//! * [`Uncoordinated`] — every instance probes random destinations
//!   independently; embarrassingly parallel but endpoint collisions inflate
//!   some links' estimates;
//! * [`Staged`] — a coordinator schedules disjoint pairs per stage
//!   (round-robin tournament), giving token-level accuracy at
//!   uncoordinated-level parallelism;
//! * [`FocusedScheme`] — executes an explicit [`ProbePlan`] (candidate
//!   cliques, detector-flagged links, staleness refreshes) with the staged
//!   discipline: O(K² + flagged) probe pairs instead of O(m²), for callers
//!   — like the online advisor — that already know where to look.
//!
//! Every scheme executes through the **stage-streaming driver layer**
//! ([`driver`]): [`Scheme::driver`] returns a resumable [`SweepDriver`]
//! whose stages can be stepped one at a time with the partial statistics
//! inspectable in between, and [`Scheme::run_onto`] is a thin
//! drive-to-completion wrapper over it. A [`PruneRule`] evaluated between
//! stages ([`run_pruned`]) can drop pairs mid-sweep once their measured
//! quantiles prove them irrelevant — the tournament shrinks while it is
//! still in flight.
//!
//! Per-link summaries (mean via Welford, p99 via the P² algorithm) feed the
//! three cost metrics of §3.2. [`approx`] holds the Appendix-2 IP-distance
//! and hop-count proxies (negative results), and [`error`] the vector
//! comparison used to score scheme accuracy.
//!
//! ```
//! use cloudia_netsim::{Cloud, Provider};
//! use cloudia_measure::{MeasureConfig, Scheme, Staged};
//!
//! let mut cloud = Cloud::boot(Provider::ec2_like(), 1);
//! let alloc = cloud.allocate(10);
//! let net = cloud.network(&alloc);
//! let report = Staged::new(5, 2).run(&net, &MeasureConfig::default());
//! assert_eq!(report.stats.covered_links(), 10 * 9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod approx;
pub mod ci;
pub mod driver;
pub mod error;
pub mod focused;
pub mod pool;
pub mod scheme;
pub mod staged;
pub mod stats;
pub mod token;
pub mod uncoordinated;

pub use ci::{t_critical, LinkCi};
pub use driver::{
    run_anytime, run_pruned, AnytimeReport, PruneRule, PrunedReport, StopRule, SweepDriver,
};
pub use focused::{FocusedScheme, ProbePlan};
pub use pool::{PoolStats, SweepPool};
pub use scheme::{MeasureConfig, MeasurementReport, Scheme, Snapshot};
pub use staged::Staged;
pub use stats::{LinkBatch, LinkEstimate, P2Quantile, PairwiseStats, Welford};
pub use token::TokenPassing;
pub use uncoordinated::Uncoordinated;

//! Focused measurement: spend the probe budget where the signal is.
//!
//! The three paper schemes ([`crate::Staged`] et al.) sweep every ordered
//! pair — O(m²) probe pairs per round — even when the caller already knows
//! which links matter. The online advisor knows a lot: the solver's
//! candidate pool bounds where any deployment will ever land, the
//! change-point detectors name the links that just shifted, and the
//! online store tracks how stale every other link's estimate is.
//! [`ProbePlan`] turns that knowledge into an explicit set of
//! unordered instance pairs, and [`FocusedScheme`] executes it with the
//! staged discipline — disjoint pairs per stage, `Ks` consecutive round
//! trips per pair, directions alternating across sweeps — so a focused
//! round has staged-level accuracy at O(K² + flagged) probe pairs.
//!
//! A plan that covers every pair ([`ProbePlan::full`]) is the fallback
//! full tournament sweep, so one scheme serves both the focused rounds and
//! the periodic refresh.

use cloudia_netsim::Network;

use crate::driver::{StageDriver, SweepDriver};
use crate::scheme::{MeasureConfig, Scheme};
use crate::staged::Staged;
use crate::stats::PairwiseStats;

use std::collections::{BTreeMap, BTreeSet};

/// A set of unordered instance pairs to probe in one measurement round.
///
/// Pairs are stored deduplicated and ordered, so plans built from the same
/// ingredients are identical and the resulting probe schedule is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbePlan {
    n: usize,
    pairs: BTreeSet<(u32, u32)>,
}

impl ProbePlan {
    /// An empty plan over `n` instances.
    pub fn new(n: usize) -> Self {
        Self { n, pairs: BTreeSet::new() }
    }

    /// The full plan: every unordered pair (the fallback tournament
    /// sweep).
    pub fn full(n: usize) -> Self {
        let mut plan = Self::new(n);
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                plan.pairs.insert((a, b));
            }
        }
        plan
    }

    /// Number of instances the plan covers.
    pub fn num_instances(&self) -> usize {
        self.n
    }

    /// Number of unordered pairs in the plan.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the plan schedules no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True when every unordered pair is scheduled — the plan degenerates
    /// to a full tournament sweep.
    pub fn is_full(&self) -> bool {
        self.pairs.len() == self.n * (self.n - 1) / 2
    }

    /// Fraction of all unordered pairs the plan schedules (0 when `n < 2`).
    pub fn coverage(&self) -> f64 {
        let all = self.n * (self.n - 1) / 2;
        if all == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / all as f64
        }
    }

    /// Adds the unordered pair `{a, b}` (direction is irrelevant: the
    /// scheme probes both directions across alternating sweeps). Self
    /// pairs are ignored.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn add_pair(&mut self, a: u32, b: u32) {
        assert!((a as usize) < self.n && (b as usize) < self.n, "pair ({a}, {b}) out of range");
        if a != b {
            self.pairs.insert((a.min(b), a.max(b)));
        }
    }

    /// Adds every unordered pair among `ids` — the candidate-pool clique,
    /// O(K²) pairs for K ids.
    pub fn add_clique(&mut self, ids: &[u32]) {
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                self.add_pair(a, b);
            }
        }
    }

    /// True if the unordered pair `{a, b}` is scheduled.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        a != b && self.pairs.contains(&(a.min(b), a.max(b)))
    }

    /// The scheduled pairs, ordered `(low, high)` ascending.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }

    /// Partitions the plan into stages of endpoint-disjoint pairs. Within
    /// one stage every pair probes concurrently with zero endpoint
    /// contention, exactly as in the staged tournament.
    ///
    /// A full plan uses the round-robin tournament (circle method) —
    /// `n_eff − 1` optimal stages computed in O(n²), matching
    /// [`Staged`]'s schedule — so the periodic full-refresh epochs pay
    /// neither extra coordination rounds nor the greedy matcher. Partial
    /// plans use greedy matching over the deterministic pair order: `O(K)`
    /// stages for a K-clique.
    pub fn stages(&self) -> Vec<Vec<(u32, u32)>> {
        if self.is_full() && self.n >= 2 {
            let rounds = (self.n + self.n % 2) - 1;
            return (0..rounds)
                .map(|r| {
                    Staged::circle_pairs(self.n, r)
                        .into_iter()
                        .map(|(a, b)| (a as u32, b as u32))
                        .collect()
                })
                .collect();
        }
        let mut remaining: Vec<(u32, u32)> = self.pairs.iter().copied().collect();
        let mut stages = Vec::new();
        while !remaining.is_empty() {
            let mut busy = vec![false; self.n];
            let mut stage = Vec::new();
            let mut rest = Vec::new();
            for (a, b) in remaining {
                if !busy[a as usize] && !busy[b as usize] {
                    busy[a as usize] = true;
                    busy[b as usize] = true;
                    stage.push((a, b));
                } else {
                    rest.push((a, b));
                }
            }
            stages.push(stage);
            remaining = rest;
        }
        stages
    }
}

/// The focused scheme: executes a [`ProbePlan`] with staged discipline.
#[derive(Debug, Clone)]
pub struct FocusedScheme {
    /// The pairs to probe this round.
    pub plan: ProbePlan,
    /// Consecutive round trips per pair within one stage (staged's Ks).
    pub ks: usize,
    /// Sweeps over the plan; directions alternate between sweeps, so two
    /// sweeps cover both directions of every planned link.
    pub sweeps: usize,
    /// Coordination overhead added between stages (ms), matching
    /// [`crate::Staged`]'s coordinator notify/ack round.
    pub coord_overhead_ms: f64,
    /// Per-pair Ks overrides (unordered, normalized `(low, high)` keys):
    /// pairs the caller wants sampled deeper than the base `ks` — e.g.
    /// detector-flagged links funded by round trips saved through
    /// mid-sweep pruning. Set via [`FocusedScheme::deepen`].
    deep: BTreeMap<(u32, u32), usize>,
}

impl FocusedScheme {
    /// Creates a focused scheme over `plan` with `Ks = ks` and the given
    /// sweep count.
    pub fn new(plan: ProbePlan, ks: usize, sweeps: usize) -> Self {
        assert!(ks > 0 && sweeps > 0, "ks and sweeps must be positive");
        Self { plan, ks, sweeps, coord_overhead_ms: 0.3, deep: BTreeMap::new() }
    }

    /// Raises the per-pair round-trip quota of the given planned pairs to
    /// `ks` (never lowers an existing override; pairs outside the plan
    /// are ignored). The deepened pairs spend `ks − base_ks` extra round
    /// trips per sweep — the `probe_ks` escalation that re-invests
    /// round trips saved by mid-sweep pruning into the links under
    /// suspicion.
    pub fn deepen(&mut self, pairs: &[(u32, u32)], ks: usize) {
        assert!(ks > 0, "deepened ks must be positive");
        for &(a, b) in pairs {
            if a != b && self.plan.contains(a, b) {
                let key = (a.min(b), a.max(b));
                let slot = self.deep.entry(key).or_insert(self.ks);
                *slot = (*slot).max(ks);
            }
        }
    }

    /// The round-trip quota of one planned pair per stage: the base `ks`,
    /// or its deepened override.
    pub fn pair_ks(&self, a: u32, b: u32) -> usize {
        self.deep.get(&(a.min(b), a.max(b))).copied().unwrap_or(self.ks)
    }

    /// Round trips one run of this scheme collects (barring a duration
    /// limit): `sweeps × Σ pair_ks`.
    pub fn planned_round_trips(&self) -> u64 {
        self.sweeps as u64 * self.plan.pairs().map(|(a, b)| self.pair_ks(a, b) as u64).sum::<u64>()
    }

    /// Round trips the deepened overrides add beyond a uniform-`ks` run:
    /// `sweeps × Σ (pair_ks − ks)` over the deepened pairs.
    pub fn deep_extra_round_trips(&self) -> u64 {
        self.sweeps as u64 * self.deep.values().map(|&k| (k - self.ks.min(k)) as u64).sum::<u64>()
    }
}

impl Scheme for FocusedScheme {
    fn name(&self) -> &'static str {
        "focused"
    }

    fn driver<'n>(
        &self,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> Box<dyn SweepDriver + 'n> {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(
            self.plan.num_instances(),
            n,
            "plan sized for {} instances, network has {n}",
            self.plan.num_instances()
        );
        // Same stage protocol as `Staged` (one shared driver); only the
        // pair schedule and per-pair sampling depth differ.
        let stages = self
            .plan
            .stages()
            .into_iter()
            .map(|stage| stage.into_iter().map(|(a, b)| (a, b, self.pair_ks(a, b))).collect())
            .collect();
        Box::new(StageDriver::new(
            "focused",
            net,
            cfg,
            stats,
            stages,
            self.sweeps,
            self.coord_overhead_ms,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staged::Staged;
    use cloudia_netsim::{Cloud, Provider};
    use std::collections::HashSet;

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    #[test]
    fn plan_dedups_and_normalizes_pairs() {
        let mut plan = ProbePlan::new(6);
        plan.add_pair(3, 1);
        plan.add_pair(1, 3);
        plan.add_pair(2, 2); // ignored
        assert_eq!(plan.len(), 1);
        assert!(plan.contains(1, 3));
        assert!(plan.contains(3, 1));
        assert!(!plan.contains(2, 2));
    }

    #[test]
    fn clique_covers_all_pairs_of_the_pool() {
        let mut plan = ProbePlan::new(10);
        plan.add_clique(&[0, 3, 7, 9]);
        assert_eq!(plan.len(), 6);
        for &(a, b) in &[(0, 3), (0, 7), (0, 9), (3, 7), (3, 9), (7, 9)] {
            assert!(plan.contains(a, b));
        }
    }

    #[test]
    fn full_plan_is_full() {
        let plan = ProbePlan::full(7);
        assert_eq!(plan.len(), 7 * 6 / 2);
        assert!(plan.is_full());
        assert!((plan.coverage() - 1.0).abs() < 1e-12);
        let mut partial = ProbePlan::new(7);
        partial.add_pair(0, 1);
        assert!(!partial.is_full());
    }

    #[test]
    fn stages_are_disjoint_and_cover_the_plan() {
        let mut plan = ProbePlan::new(9);
        plan.add_clique(&[0, 1, 2, 3, 4]);
        plan.add_pair(7, 8);
        let stages = plan.stages();
        let mut seen = HashSet::new();
        for stage in &stages {
            let mut busy = HashSet::new();
            for &(a, b) in stage {
                assert!(busy.insert(a), "endpoint {a} repeated in stage");
                assert!(busy.insert(b), "endpoint {b} repeated in stage");
                assert!(seen.insert((a, b)), "pair ({a},{b}) repeated across stages");
            }
        }
        assert_eq!(seen.len(), plan.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_rejects_out_of_range_pairs() {
        ProbePlan::new(4).add_pair(0, 4);
    }

    #[test]
    fn full_plan_stages_use_the_tournament_schedule() {
        // A full plan must pay the circle method's n_eff - 1 stages, not
        // the greedy matcher's ~2x count — and still cover every pair
        // disjointly.
        for n in [6usize, 7, 12] {
            let stages = ProbePlan::full(n).stages();
            assert_eq!(stages.len(), (n + n % 2) - 1, "n={n}");
            let mut seen = HashSet::new();
            for stage in &stages {
                let mut busy = HashSet::new();
                for &(a, b) in stage {
                    assert!(busy.insert(a) && busy.insert(b), "n={n}: endpoint reused");
                    assert!(seen.insert((a.min(b), a.max(b))), "n={n}: pair repeated");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn focused_full_plan_matches_staged_estimates() {
        // On a quiet network both schemes see truth + constant overhead on
        // every link, so a full-plan focused run and a staged run agree.
        let net = network(8, 1);
        let cfg = MeasureConfig::default();
        let focused = FocusedScheme::new(ProbePlan::full(8), 3, 2).run(&net, &cfg);
        let staged = Staged::new(3, 2).run(&net, &cfg);
        assert_eq!(focused.stats.covered_links(), 8 * 7);
        assert_eq!(focused.round_trips, staged.round_trips);
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert!(
                        (focused.stats.link(i, j).mean() - staged.stats.link(i, j).mean()).abs()
                            < 1e-9,
                        "({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn focused_probes_only_planned_links() {
        let net = network(10, 2);
        let mut plan = ProbePlan::new(10);
        plan.add_clique(&[0, 2, 4]);
        plan.add_pair(8, 9);
        let report = FocusedScheme::new(plan.clone(), 2, 2).run(&net, &MeasureConfig::default());
        assert_eq!(report.round_trips, 2 * 2 * plan.len() as u64);
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i == j {
                    continue;
                }
                let count = report.stats.link(i as usize, j as usize).count();
                if plan.contains(i, j) {
                    assert_eq!(count, 2, "({i},{j}) planned link undersampled");
                } else {
                    assert_eq!(count, 0, "({i},{j}) unplanned link probed");
                }
            }
        }
    }

    #[test]
    fn focused_cost_scales_with_plan_size_not_network_size() {
        let net = network(24, 3);
        let cfg = MeasureConfig::default();
        let mut small = ProbePlan::new(24);
        small.add_clique(&[0, 1, 2, 3, 4, 5]);
        let focused = FocusedScheme::new(small, 3, 2).run(&net, &cfg);
        let full = FocusedScheme::new(ProbePlan::full(24), 3, 2).run(&net, &cfg);
        assert!(focused.round_trips * 10 < full.round_trips);
        assert!(
            focused.elapsed_ms < full.elapsed_ms / 2.0,
            "focused {} vs full {}",
            focused.elapsed_ms,
            full.elapsed_ms
        );
    }

    #[test]
    fn run_onto_accumulates_for_focused_rounds() {
        let net = network(6, 4);
        let cfg = MeasureConfig::default();
        let mut plan = ProbePlan::new(6);
        plan.add_clique(&[0, 1, 2]);
        let scheme = FocusedScheme::new(plan, 2, 2);
        let first = scheme.run(&net, &cfg);
        let second = scheme.run_onto(&net, &cfg, first.stats.clone());
        assert_eq!(second.round_trips, first.round_trips);
        assert_eq!(second.stats.total_samples(), 2 * first.stats.total_samples());
        assert_eq!(second.stats.link(0, 1).count(), 2 * first.stats.link(0, 1).count());
    }

    #[test]
    fn empty_plan_is_a_noop_round() {
        let net = network(4, 5);
        let report =
            FocusedScheme::new(ProbePlan::new(4), 2, 2).run(&net, &MeasureConfig::default());
        assert_eq!(report.round_trips, 0);
        assert_eq!(report.stats.covered_links(), 0);
    }

    #[test]
    fn duration_limit_stops_sweeps() {
        let net = network(8, 6);
        let cfg = MeasureConfig { max_duration_ms: Some(5.0), ..Default::default() };
        let scheme = FocusedScheme::new(ProbePlan::full(8), 5, 1000);
        let report = scheme.run(&net, &cfg);
        assert!(report.round_trips < scheme.planned_round_trips());
    }

    #[test]
    fn deepened_pairs_get_extra_samples() {
        let net = network(8, 7);
        let mut plan = ProbePlan::new(8);
        plan.add_clique(&[0, 1, 2, 3]);
        let mut scheme = FocusedScheme::new(plan, 2, 2);
        let base_planned = scheme.planned_round_trips();
        scheme.deepen(&[(0, 1), (2, 3)], 5);
        assert_eq!(scheme.pair_ks(1, 0), 5, "deepening is direction-agnostic");
        assert_eq!(scheme.pair_ks(0, 2), 2);
        assert_eq!(scheme.deep_extra_round_trips(), 2 * 2 * 3);
        assert_eq!(scheme.planned_round_trips(), base_planned + scheme.deep_extra_round_trips());
        let report = scheme.run(&net, &MeasureConfig::default());
        assert_eq!(report.round_trips, scheme.planned_round_trips());
        // Two sweeps: each direction of a deepened pair sampled once at
        // the deepened quota.
        assert_eq!(report.stats.link(0, 1).count(), 5);
        assert_eq!(report.stats.link(1, 0).count(), 5);
        assert_eq!(report.stats.link(0, 2).count(), 2);
    }

    #[test]
    fn deepen_ignores_unplanned_pairs_and_never_lowers() {
        let mut plan = ProbePlan::new(6);
        plan.add_pair(0, 1);
        let mut scheme = FocusedScheme::new(plan, 3, 2);
        scheme.deepen(&[(0, 1)], 6);
        scheme.deepen(&[(0, 1)], 4); // lower request: no effect
        scheme.deepen(&[(2, 3)], 9); // not planned: ignored
        assert_eq!(scheme.pair_ks(0, 1), 6);
        assert_eq!(scheme.pair_ks(2, 3), 3, "unplanned pair keeps the base ks");
        assert_eq!(scheme.deep_extra_round_trips(), 2 * 3);
    }
}

//! Uncoordinated measurement (paper §5, approach 2).
//!
//! Every instance independently picks a random destination, probes it,
//! waits for the reply, and repeats. Up to `n` probes are in flight at
//! once, so the scheme is fast — but nothing prevents an instance from
//! having to serve a reply while sending its own probe, or several probes
//! from converging on one destination. Those collisions queue at the
//! endpoints (see [`cloudia_netsim::Engine`]) and inflate the observed
//! round-trip times of whichever links happened to collide, producing the
//! long error tail the paper shows in Fig. 4.

use std::collections::HashSet;

use rand::{rngs::StdRng, Rng, SeedableRng};

use cloudia_netsim::{InstanceId, MessageSpec, Network};

use crate::driver::{norm_pair, SweepDriver};
use crate::scheme::{
    MeasureConfig, MeasurementReport, Scheme, SnapshotTracker, KIND_PROBE, KIND_REPLY,
};
use crate::stats::PairwiseStats;

/// The uncoordinated scheme.
#[derive(Debug, Clone)]
pub struct Uncoordinated {
    /// Number of probes each instance issues.
    pub probes_per_instance: usize,
}

impl Uncoordinated {
    /// Creates an uncoordinated scheme issuing `probes_per_instance` probes
    /// from every instance.
    pub fn new(probes_per_instance: usize) -> Self {
        assert!(probes_per_instance > 0, "need at least one probe per instance");
        Self { probes_per_instance }
    }
}

impl Scheme for Uncoordinated {
    fn name(&self) -> &'static str {
        "uncoordinated"
    }

    fn driver<'n>(
        &self,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> Box<dyn SweepDriver + 'n> {
        Box::new(UncoordinatedDriver::new(net, cfg, stats, self.probes_per_instance))
    }
}

/// Streaming driver of the uncoordinated scheme. The scheme has no
/// stages of its own — every instance independently keeps one probe in
/// flight — so one [`SweepDriver::step`] drains the delivery queue until
/// `n` further round trips have completed (or nothing is left in
/// flight), giving callers a natural between-batches point to inspect
/// partial statistics. Pruned pairs are skipped by the destination draw;
/// an instance whose every destination is pruned stops probing and
/// forfeits its remaining budget.
struct UncoordinatedDriver<'n> {
    engine: cloudia_netsim::Engine<'n>,
    cfg: MeasureConfig,
    stats: PairwiseStats,
    tracker: SnapshotTracker,
    rng: StdRng,
    n: usize,
    probes_per_instance: usize,
    /// Per-instance probe state: outstanding probe send time and count
    /// of probes issued. Each instance has at most one outstanding probe.
    probe_sent_at: Vec<f64>,
    probe_dst: Vec<usize>,
    issued: Vec<usize>,
    /// Retransmit budget of the current launch: refilled from
    /// `cfg.retries_per_pair` on every fresh destination draw, burned
    /// by timeouts. When it runs out the launch is simply consumed.
    retry_left: Vec<u32>,
    pruned: HashSet<(u32, u32)>,
    round_trips: u64,
}

fn norm(a: usize, b: usize) -> (u32, u32) {
    norm_pair(a as u32, b as u32)
}

impl<'n> UncoordinatedDriver<'n> {
    fn new(
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
        probes_per_instance: usize,
    ) -> Self {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(stats.len(), n, "stats sized for {} instances, network has {n}", stats.len());
        let mut engine = net.engine(cfg.nic, cfg.seed);
        engine.set_timeout_ms(cfg.timeout_ms);
        let mut driver = Self {
            engine,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            cfg: cfg.clone(),
            stats,
            tracker: SnapshotTracker::new(cfg),
            n,
            probes_per_instance,
            probe_sent_at: vec![0.0f64; n],
            probe_dst: vec![0usize; n],
            issued: vec![0usize; n],
            retry_left: vec![0u32; n],
            pruned: HashSet::new(),
            round_trips: 0,
        };
        // Everyone starts probing at t = 0 — the defining property of the
        // scheme (and the source of its interference).
        for src in 0..n {
            driver.launch(src);
        }
        driver
    }

    fn launch(&mut self, src: usize) {
        // With pruning active the destination draw skips pruned pairs
        // (the empty-set check keeps the draw sequence bit-identical to
        // the unpruned path); when every destination of `src` is pruned
        // the remaining budget is forfeited.
        if !self.pruned.is_empty()
            && (0..self.n).all(|d| d == src || self.pruned.contains(&norm(src, d)))
        {
            return;
        }
        let dst = loop {
            let d = self.rng.random_range(0..self.n);
            if d != src && !self.pruned.contains(&norm(src, d)) {
                break d;
            }
        };
        self.probe_dst[src] = dst;
        self.issued[src] += 1;
        self.retry_left[src] = self.cfg.retries_per_pair;
        self.send_probe(src);
    }

    /// Issues (or re-issues) the probe of `src`'s current launch to the
    /// already-drawn destination, counting the attempt.
    fn send_probe(&mut self, src: usize) {
        self.stats.record_attempt(src, self.probe_dst[src]);
        let sent = self.engine.send(MessageSpec {
            src: InstanceId::from_index(src),
            dst: InstanceId::from_index(self.probe_dst[src]),
            size_kb: self.cfg.probe_size_kb,
            kind: KIND_PROBE,
            token: src as u64,
        });
        self.probe_sent_at[src] = sent;
    }
}

impl SweepDriver for UncoordinatedDriver<'_> {
    fn scheme_name(&self) -> &'static str {
        "uncoordinated"
    }

    fn step(&mut self) -> bool {
        let mut recorded = 0usize;
        let mut any = false;
        while recorded < self.n {
            let Some(msg) = self.engine.next_delivery() else {
                return any;
            };
            any = true;
            match msg.spec.kind {
                KIND_PROBE if !msg.lost => {
                    // Reply immediately (queues behind whatever the
                    // destination endpoint is doing).
                    self.engine.send(MessageSpec {
                        src: msg.spec.dst,
                        dst: msg.spec.src,
                        size_kb: self.cfg.probe_size_kb,
                        kind: KIND_REPLY,
                        token: msg.spec.token,
                    });
                }
                KIND_PROBE | KIND_REPLY => {
                    let src = msg.spec.token as usize;
                    let under_limit =
                        self.cfg.max_duration_ms.is_none_or(|limit| self.engine.now() < limit);
                    if msg.lost {
                        // The prober's timeout (lost probe or lost
                        // reply): retransmit to the same destination
                        // while the launch's budget lasts, else the
                        // launch is consumed and the next one starts.
                        self.stats.record_timeout(src, self.probe_dst[src]);
                        if self.retry_left[src] > 0 && under_limit {
                            self.retry_left[src] -= 1;
                            self.send_probe(src);
                        } else if self.issued[src] < self.probes_per_instance && under_limit {
                            self.launch(src);
                        }
                        continue;
                    }
                    self.stats.record(
                        src,
                        self.probe_dst[src],
                        msg.delivered_at - self.probe_sent_at[src],
                    );
                    self.round_trips += 1;
                    recorded += 1;
                    self.tracker.maybe_snapshot(self.engine.now(), &self.stats);
                    if self.issued[src] < self.probes_per_instance && under_limit {
                        self.launch(src);
                    }
                }
                other => unreachable!("unexpected message kind {other}"),
            }
        }
        true
    }

    fn stats(&self) -> &PairwiseStats {
        &self.stats
    }

    fn round_trips(&self) -> u64 {
        self.round_trips
    }

    fn elapsed_ms(&self) -> f64 {
        self.engine.now()
    }

    fn remaining_pairs(&self) -> Vec<(u32, u32)> {
        // Destinations are drawn at random, so "still scheduled" means
        // every unpruned pair one of the budget-holding instances could
        // still draw.
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for src in 0..self.n {
            if self.issued[src] >= self.probes_per_instance {
                continue;
            }
            for d in 0..self.n {
                if d == src {
                    continue;
                }
                let pair = norm(src, d);
                if !self.pruned.contains(&pair) && seen.insert(pair) {
                    out.push(pair);
                }
            }
        }
        out
    }

    fn planned_remaining(&self) -> u64 {
        (0..self.n)
            .filter(|&src| (0..self.n).any(|d| d != src && !self.pruned.contains(&norm(src, d))))
            .map(|src| {
                (self.probes_per_instance - self.issued[src].min(self.probes_per_instance)) as u64
            })
            .sum()
    }

    fn retain_pairs(&mut self, keep: &mut dyn FnMut(u32, u32) -> bool) -> u64 {
        let before = self.planned_remaining();
        for (a, b) in self.remaining_pairs() {
            if !keep(a, b) {
                self.pruned.insert((a, b));
            }
        }
        before - self.planned_remaining()
    }

    fn finish(self: Box<Self>) -> MeasurementReport {
        MeasurementReport {
            scheme: "uncoordinated",
            elapsed_ms: self.engine.now(),
            round_trips: self.round_trips,
            snapshots: self.tracker.snapshots,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudia_netsim::{Cloud, Provider};

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    #[test]
    fn issues_requested_probe_count() {
        let net = network(6, 1);
        let report = Uncoordinated::new(50).run(&net, &MeasureConfig::default());
        assert_eq!(report.round_trips, 6 * 50);
    }

    #[test]
    fn is_much_faster_than_token_for_same_sample_count() {
        let net = network(10, 2);
        let samples = 20;
        let unc = Uncoordinated::new(samples * 9).run(&net, &MeasureConfig::default());
        let tok = crate::token::TokenPassing::new(samples).run(&net, &MeasureConfig::default());
        // Same total round trips, but uncoordinated runs ~n probes in
        // parallel.
        assert_eq!(unc.round_trips, tok.round_trips);
        assert!(
            unc.elapsed_ms < tok.elapsed_ms / 3.0,
            "uncoordinated {} vs token {}",
            unc.elapsed_ms,
            tok.elapsed_ms
        );
    }

    #[test]
    fn interference_inflates_estimates() {
        // With zero jitter, any deviation of an estimate above
        // truth + constant overhead is queueing delay. Uncoordinated must
        // show some; token never does.
        let net = network(12, 3);
        let cfg = MeasureConfig::default();
        let overhead = 4.0 * (cfg.nic.handle_ms + cfg.nic.serialize_ms_per_kb);
        let report = Uncoordinated::new(200).run(&net, &cfg);
        let mut inflated = 0usize;
        let mut measured = 0usize;
        for i in 0..12u32 {
            for j in 0..12u32 {
                if i == j {
                    continue;
                }
                let link = report.stats.link(i as usize, j as usize);
                if link.count() == 0 {
                    continue;
                }
                measured += 1;
                let truth = net.mean_rtt(InstanceId(i), InstanceId(j)) + overhead;
                if link.mean() > truth + 1e-9 {
                    inflated += 1;
                }
            }
        }
        assert!(measured > 100);
        assert!(inflated > measured / 10, "only {inflated}/{measured} links inflated");
    }

    #[test]
    fn duration_limit_respected() {
        let net = network(8, 4);
        let cfg = MeasureConfig { max_duration_ms: Some(3.0), ..Default::default() };
        let report = Uncoordinated::new(10_000).run(&net, &cfg);
        assert!(report.round_trips < 8 * 10_000);
        // In-flight probes at the cutoff still complete, so allow slack.
        assert!(report.elapsed_ms < 6.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = network(5, 5);
        let cfg = MeasureConfig { seed: 77, ..Default::default() };
        let a = Uncoordinated::new(30).run(&net, &cfg);
        let b = Uncoordinated::new(30).run(&net, &cfg);
        assert_eq!(a.mean_vector(), b.mean_vector());
    }
}

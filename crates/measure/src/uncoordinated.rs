//! Uncoordinated measurement (paper §5, approach 2).
//!
//! Every instance independently picks a random destination, probes it,
//! waits for the reply, and repeats. Up to `n` probes are in flight at
//! once, so the scheme is fast — but nothing prevents an instance from
//! having to serve a reply while sending its own probe, or several probes
//! from converging on one destination. Those collisions queue at the
//! endpoints (see [`cloudia_netsim::Engine`]) and inflate the observed
//! round-trip times of whichever links happened to collide, producing the
//! long error tail the paper shows in Fig. 4.

use rand::{rngs::StdRng, Rng, SeedableRng};

use cloudia_netsim::{InstanceId, MessageSpec, Network};

use crate::scheme::{
    MeasureConfig, MeasurementReport, Scheme, SnapshotTracker, KIND_PROBE, KIND_REPLY,
};
use crate::stats::PairwiseStats;

/// The uncoordinated scheme.
#[derive(Debug, Clone)]
pub struct Uncoordinated {
    /// Number of probes each instance issues.
    pub probes_per_instance: usize,
}

impl Uncoordinated {
    /// Creates an uncoordinated scheme issuing `probes_per_instance` probes
    /// from every instance.
    pub fn new(probes_per_instance: usize) -> Self {
        assert!(probes_per_instance > 0, "need at least one probe per instance");
        Self { probes_per_instance }
    }
}

impl Scheme for Uncoordinated {
    fn name(&self) -> &'static str {
        "uncoordinated"
    }

    fn run_onto(
        &self,
        net: &Network,
        cfg: &MeasureConfig,
        mut stats: PairwiseStats,
    ) -> MeasurementReport {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(stats.len(), n, "stats sized for {} instances, network has {n}", stats.len());
        let mut engine = net.engine(cfg.nic, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut tracker = SnapshotTracker::new(cfg);
        let mut round_trips = 0u64;

        // Per-instance probe state: outstanding probe send time and count
        // of probes issued. Each instance has at most one outstanding probe.
        let mut probe_sent_at = vec![0.0f64; n];
        let mut probe_dst = vec![0usize; n];
        let mut issued = vec![0usize; n];

        let launch = |src: usize,
                      engine: &mut cloudia_netsim::Engine<'_>,
                      rng: &mut StdRng,
                      probe_sent_at: &mut [f64],
                      probe_dst: &mut [usize],
                      issued: &mut [usize]| {
            let dst = loop {
                let d = rng.random_range(0..n);
                if d != src {
                    break d;
                }
            };
            let sent = engine.send(MessageSpec {
                src: InstanceId::from_index(src),
                dst: InstanceId::from_index(dst),
                size_kb: cfg.probe_size_kb,
                kind: KIND_PROBE,
                token: src as u64,
            });
            probe_sent_at[src] = sent;
            probe_dst[src] = dst;
            issued[src] += 1;
        };

        // Everyone starts probing at t = 0 — the defining property of the
        // scheme (and the source of its interference).
        for src in 0..n {
            launch(src, &mut engine, &mut rng, &mut probe_sent_at, &mut probe_dst, &mut issued);
        }

        while let Some(msg) = engine.next_delivery() {
            match msg.spec.kind {
                KIND_PROBE => {
                    // Reply immediately (queues behind whatever the
                    // destination endpoint is doing).
                    engine.send(MessageSpec {
                        src: msg.spec.dst,
                        dst: msg.spec.src,
                        size_kb: cfg.probe_size_kb,
                        kind: KIND_REPLY,
                        token: msg.spec.token,
                    });
                }
                KIND_REPLY => {
                    let src = msg.spec.token as usize;
                    stats.record(src, probe_dst[src], msg.delivered_at - probe_sent_at[src]);
                    round_trips += 1;
                    tracker.maybe_snapshot(engine.now(), &stats);
                    let under_limit = cfg.max_duration_ms.is_none_or(|limit| engine.now() < limit);
                    if issued[src] < self.probes_per_instance && under_limit {
                        launch(
                            src,
                            &mut engine,
                            &mut rng,
                            &mut probe_sent_at,
                            &mut probe_dst,
                            &mut issued,
                        );
                    }
                }
                other => unreachable!("unexpected message kind {other}"),
            }
        }

        MeasurementReport {
            scheme: "uncoordinated",
            elapsed_ms: engine.now(),
            round_trips,
            snapshots: tracker.snapshots,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudia_netsim::{Cloud, Provider};

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    #[test]
    fn issues_requested_probe_count() {
        let net = network(6, 1);
        let report = Uncoordinated::new(50).run(&net, &MeasureConfig::default());
        assert_eq!(report.round_trips, 6 * 50);
    }

    #[test]
    fn is_much_faster_than_token_for_same_sample_count() {
        let net = network(10, 2);
        let samples = 20;
        let unc = Uncoordinated::new(samples * 9).run(&net, &MeasureConfig::default());
        let tok = crate::token::TokenPassing::new(samples).run(&net, &MeasureConfig::default());
        // Same total round trips, but uncoordinated runs ~n probes in
        // parallel.
        assert_eq!(unc.round_trips, tok.round_trips);
        assert!(
            unc.elapsed_ms < tok.elapsed_ms / 3.0,
            "uncoordinated {} vs token {}",
            unc.elapsed_ms,
            tok.elapsed_ms
        );
    }

    #[test]
    fn interference_inflates_estimates() {
        // With zero jitter, any deviation of an estimate above
        // truth + constant overhead is queueing delay. Uncoordinated must
        // show some; token never does.
        let net = network(12, 3);
        let cfg = MeasureConfig::default();
        let overhead = 4.0 * (cfg.nic.handle_ms + cfg.nic.serialize_ms_per_kb);
        let report = Uncoordinated::new(200).run(&net, &cfg);
        let mut inflated = 0usize;
        let mut measured = 0usize;
        for i in 0..12u32 {
            for j in 0..12u32 {
                if i == j {
                    continue;
                }
                let link = report.stats.link(i as usize, j as usize);
                if link.count() == 0 {
                    continue;
                }
                measured += 1;
                let truth = net.mean_rtt(InstanceId(i), InstanceId(j)) + overhead;
                if link.mean() > truth + 1e-9 {
                    inflated += 1;
                }
            }
        }
        assert!(measured > 100);
        assert!(inflated > measured / 10, "only {inflated}/{measured} links inflated");
    }

    #[test]
    fn duration_limit_respected() {
        let net = network(8, 4);
        let cfg = MeasureConfig { max_duration_ms: Some(3.0), ..Default::default() };
        let report = Uncoordinated::new(10_000).run(&net, &cfg);
        assert!(report.round_trips < 8 * 10_000);
        // In-flight probes at the cutoff still complete, so allow slack.
        assert!(report.elapsed_ms < 6.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = network(5, 5);
        let cfg = MeasureConfig { seed: 77, ..Default::default() };
        let a = Uncoordinated::new(30).run(&net, &cfg);
        let b = Uncoordinated::new(30).run(&net, &cfg);
        assert_eq!(a.mean_vector(), b.mean_vector());
    }
}

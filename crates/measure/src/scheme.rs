//! Common driver types for the three measurement schemes of paper §5.
//!
//! A scheme runs over a [`Network`]'s discrete-event engine, probing pairs
//! of instances with small TCP-like messages and recording round-trip
//! times into [`PairwiseStats`]. Schemes differ in *how* probes are
//! scheduled — serially (token passing), independently at random
//! (uncoordinated), or in coordinator-chosen disjoint pairs (staged) — and
//! that scheduling determines both accuracy (interference) and wall-clock
//! cost (parallelism).

use cloudia_netsim::{Network, NicParams};

use crate::driver::SweepDriver;
use crate::pool::SweepPool;
use crate::stats::{LinkBatch, PairwiseStats};

/// Message kinds used by all schemes.
pub(crate) const KIND_PROBE: u32 = 0;
/// Reply to a probe; completes one RTT observation.
pub(crate) const KIND_REPLY: u32 = 1;
/// Token handoff (token-passing scheme only).
pub(crate) const KIND_TOKEN: u32 = 2;

/// Configuration shared by all measurement schemes.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Probe payload size in KB (paper: 1 KB unless stated).
    pub probe_size_kb: f64,
    /// Endpoint handling parameters for the event engine.
    pub nic: NicParams,
    /// RNG seed (probe jitter, destination choice).
    pub seed: u64,
    /// Worker threads for stage execution in the staged/focused schemes.
    /// The pairs of a stage are endpoint-disjoint by construction, so
    /// their probe timelines are independent and fan out across threads;
    /// results are merged deterministically, making every worker count
    /// (including 1) byte-identical. `0` (the default) auto-sizes from
    /// the machine and stays serial for small stages; an explicit
    /// value > 1 always fans out.
    pub stage_workers: usize,
    /// If set, record a snapshot of the mean-estimate vector every this
    /// many simulated milliseconds (used by the Fig. 5 convergence study).
    pub snapshot_every_ms: Option<f64>,
    /// If set, stop issuing new probes after this much simulated time.
    /// The contract (shared by every scheme, pinned by proptest): no
    /// probe is *issued* at or after the deadline; probes already in
    /// flight complete and are recorded.
    pub max_duration_ms: Option<f64>,
    /// Sender timeout (ms) after which a lost probe or reply is
    /// discovered and a retransmit may be issued.
    pub timeout_ms: f64,
    /// Retransmit budget per scheduled pair (per stage / circulation
    /// visit / launch): after this many timeouts the pair's remaining
    /// quota is forfeited and its coverage recorded as attempted. On a
    /// lossless network the budget is never consulted, so loss-awareness
    /// is free when the network is clean.
    pub retries_per_pair: u32,
    /// If set, spill the P² sketch of any link that has gone this many
    /// completed stages without a fresh sample
    /// ([`crate::PairwiseStats::spill_quiet`]); spilled sketches
    /// re-allocate on the link's next sample. Bounds the stats plane's
    /// resident footprint on huge sparse sweeps, at the cost of a
    /// temporary mean+SD p99 proxy on quiet links. `None` (default)
    /// keeps every sketch forever.
    pub sketch_spill_horizon: Option<u64>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            probe_size_kb: 1.0,
            nic: NicParams::default(),
            seed: 0,
            snapshot_every_ms: None,
            max_duration_ms: None,
            timeout_ms: cloudia_netsim::DEFAULT_TIMEOUT_MS,
            retries_per_pair: 3,
            stage_workers: 0,
            sketch_spill_horizon: None,
        }
    }
}

/// A time-stamped snapshot of the flattened mean-estimate vector.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated time of the snapshot (ms).
    pub at_ms: f64,
    /// Mean estimates over all ordered pairs, row-major, diagonal skipped.
    pub mean_vector: Vec<f64>,
}

/// The result of one measurement run.
#[derive(Debug, Clone)]
pub struct MeasurementReport {
    /// Which scheme produced this report.
    pub scheme: &'static str,
    /// Per-link online summaries.
    pub stats: PairwiseStats,
    /// Total simulated time the measurement occupied (ms).
    pub elapsed_ms: f64,
    /// Number of completed round-trip observations.
    pub round_trips: u64,
    /// Mean-vector snapshots (empty unless requested).
    pub snapshots: Vec<Snapshot>,
}

impl MeasurementReport {
    /// Flattened mean vector at the end of the run.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.stats.mean_vector()
    }
}

/// A pairwise latency measurement scheme.
pub trait Scheme {
    /// Short identifier ("token", "uncoordinated", "staged").
    fn name(&self) -> &'static str;

    /// Builds a resumable stage-granular driver of this scheme over
    /// `net`, recording into the given (possibly pre-accumulated)
    /// statistics — the streaming entry point (see
    /// [`crate::driver::SweepDriver`]). Driving a fresh driver to
    /// exhaustion is bit-identical to [`Scheme::run_onto`].
    ///
    /// # Panics
    /// Panics if `stats` was sized for a different instance count.
    fn driver<'n>(
        &self,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> Box<dyn SweepDriver + 'n>;

    /// Runs the scheme over `net` from empty statistics and returns the
    /// collected estimates.
    fn run(&self, net: &Network, cfg: &MeasureConfig) -> MeasurementReport {
        self.run_onto(net, cfg, PairwiseStats::new(net.len()))
    }

    /// Incremental entry point: runs the scheme over `net` and records new
    /// samples *into* pre-accumulated statistics, so repeated measurement
    /// rounds build per-link history instead of starting from scratch
    /// (the online advisor's streaming measurement path). The returned
    /// report's `round_trips`/`elapsed_ms` cover this run only; its `stats`
    /// carry the full accumulated history.
    ///
    /// This is a thin drive-to-completion wrapper over [`Scheme::driver`].
    ///
    /// # Panics
    /// Panics if `stats` was sized for a different instance count.
    fn run_onto(
        &self,
        net: &Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> MeasurementReport {
        let mut driver = self.driver(net, cfg, stats);
        while driver.step() {}
        driver.finish()
    }
}

/// Derives one scheduled pair's RNG substream seed from its schedule
/// identity `(run seed, sweep, stage, src, dst)` — a SplitMix64
/// finalizer folded over the components.
///
/// Keying on identity instead of drawing sequentially from a master
/// stream means a pair's seed does not depend on which *other* pairs the
/// stage still holds: mid-sweep pruning, dark-pair strikes, and thread
/// fan-out all leave a surviving pair's measured timeline untouched
/// (common random numbers across pruned and unpruned arms — cost
/// differentials measure the probes actually forgone, not a noise
/// re-roll), and seeded traces are byte-identical at every worker count.
/// The property suite pins the derivation via a transcribed copy.
pub(crate) fn substream_seed(seed: u64, sweep: usize, stage: usize, src: usize, dst: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut z = mix(seed);
    for v in [sweep as u64, stage as u64, src as u64, dst as u64] {
        z = mix(z ^ v);
    }
    z
}

/// What one stage execution produced: completed round trips plus the
/// pairs that went dark (retry budget exhausted without a single
/// success this stage) — the driver drops those from later stages so
/// `remaining_pairs`/`planned_remaining` stay truthful under loss.
#[derive(Debug, Default)]
pub(crate) struct StageOutcome {
    /// Round trips completed this stage.
    pub(crate) round_trips: u64,
    /// Pair ids (indices into the stage's `directed` slice) that
    /// exhausted their retry budget with zero successes.
    pub(crate) dark: Vec<usize>,
    /// Simulated time the stage finished (the latest pair's last event;
    /// `t0` if the stage issued nothing).
    pub(crate) end: f64,
    /// Messages sent / delivered / dropped across all pairs.
    pub(crate) sent: u64,
    pub(crate) delivered: u64,
    pub(crate) lost: u64,
    /// Worker threads the stage actually fanned out over (1 = serial).
    pub(crate) workers: usize,
    /// Wall nanoseconds spent merging per-pair outcomes into the stats.
    pub(crate) merge_ns: u64,
}

/// One pair's complete probe timeline within a stage, simulated in
/// isolation (see [`simulate_pair`]).
#[derive(Debug, Default)]
struct PairOutcome {
    /// `(completion_time, rtt)` per successful round trip, time-ordered.
    samples: Vec<(f64, f64)>,
    attempts: u64,
    timeouts: u64,
    sent: u64,
    delivered: u64,
    lost: u64,
    dark: bool,
    /// Simulated time of the pair's last event.
    end: f64,
}

/// Simulates one directed pair's whole stage timeline analytically.
///
/// Within a stage the pairs are endpoint-disjoint, so a pair's endpoints
/// are provably idle at each of its send moments and the discrete-event
/// engine's behaviour collapses to closed form: a message sent at `s`
/// either drops (the sender's timeout fires at `s + busy + timeout`) or
/// is delivered at `s + 2·busy + one_way` (serialize at the source,
/// propagate, handle at the destination). Each pair draws jitter and
/// fault decisions from its own seeded substreams, which is what makes
/// stage execution order — and thus thread fan-out — irrelevant to the
/// result.
///
/// Loss handling matches the engine protocol: every probe issuance is an
/// attempt; a lost probe or reply counts a timeout and triggers a
/// retransmit while the `cfg.retries_per_pair` budget lasts; a pair that
/// exhausts the budget without one success is dark. No probe (initial,
/// follow-up, or retransmit) is issued at or after `limit`.
fn simulate_pair(
    net: &Network,
    cfg: &MeasureConfig,
    limit: f64,
    t0: f64,
    (src, dst): (usize, usize),
    k: usize,
    seed: u64,
) -> PairOutcome {
    use cloudia_netsim::InstanceId;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    debug_assert!(k > 0, "every scheduled pair needs a positive quota");
    let (src_id, dst_id) = (InstanceId::from_index(src), InstanceId::from_index(dst));
    let busy = cfg.nic.handle_ms + cfg.nic.serialize_ms_per_kb * cfg.probe_size_kb;
    let (drop_fwd, drop_rev) = (net.drop_prob(src_id, dst_id), net.drop_prob(dst_id, src_id));
    // The same latency/fault RNG split an `Engine` seeded with `seed`
    // would use — a pair's timeline here is bit-identical to running it
    // alone on a fresh engine (the property suite pins exactly that).
    let mut lat = StdRng::seed_from_u64(seed);
    let mut fault = StdRng::seed_from_u64(seed ^ 0x10_55_10_55_10_55_10_55);

    let mut out = PairOutcome { end: t0, ..PairOutcome::default() };
    let mut remaining = k - 1;
    let mut budget = cfg.retries_per_pair;
    let mut successes = 0u64;
    let mut send = t0;
    out.attempts += 1;
    loop {
        // Probe leg. The fault RNG is only consulted on links with a
        // positive drop probability (zero-loss runs never touch it).
        out.sent += 1;
        if drop_fwd > 0.0 && fault.random::<f64>() < drop_fwd {
            out.lost += 1;
            out.timeouts += 1;
            out.end = send + busy + cfg.timeout_ms;
            if budget > 0 && out.end < limit {
                budget -= 1;
                out.attempts += 1;
                send = out.end;
                continue;
            }
            if budget == 0 && successes == 0 {
                out.dark = true;
            }
            break;
        }
        // Summed in the engine's exact association order (serialize,
        // propagate, then handle) so the timeline is bit-identical, not
        // merely equal to rounding: `send + 2·busy + ow` differs from
        // `((send + busy) + ow) + busy` in the last ULP.
        let probe_delivered = send
            + busy
            + net.model().sample_one_way(src_id, dst_id, cfg.probe_size_kb, &mut lat)
            + busy;
        out.delivered += 1;
        // Reply leg, issued by the destination the moment the probe
        // lands.
        out.sent += 1;
        if drop_rev > 0.0 && fault.random::<f64>() < drop_rev {
            out.lost += 1;
            out.timeouts += 1;
            out.end = probe_delivered + busy + cfg.timeout_ms;
            if budget > 0 && out.end < limit {
                budget -= 1;
                out.attempts += 1;
                send = out.end;
                continue;
            }
            if budget == 0 && successes == 0 {
                out.dark = true;
            }
            break;
        }
        let reply_delivered = probe_delivered
            + busy
            + net.model().sample_one_way(dst_id, src_id, cfg.probe_size_kb, &mut lat)
            + busy;
        out.delivered += 1;
        out.end = reply_delivered;
        out.samples.push((reply_delivered, reply_delivered - send));
        successes += 1;
        if remaining > 0 && reply_delivered < limit {
            remaining -= 1;
            out.attempts += 1;
            send = reply_delivered;
        } else {
            break;
        }
    }
    out
}

/// Simulates every pair of a stage, fanning out across `workers` tasks
/// on the persistent [`SweepPool`] when asked to (each task owns a
/// contiguous chunk of the pair list; per-pair RNG substreams make the
/// split invisible in the results). The pool's threads are long-lived —
/// stages and epochs reuse them instead of paying a spawn/join barrier
/// per stage.
#[allow(clippy::too_many_arguments)]
fn simulate_stage(
    net: &Network,
    cfg: &MeasureConfig,
    limit: f64,
    t0: f64,
    directed: &[(usize, usize)],
    ks: &[usize],
    seeds: &[u64],
    workers: usize,
) -> Vec<PairOutcome> {
    let workers = workers.clamp(1, directed.len());
    if workers == 1 {
        return directed
            .iter()
            .zip(ks)
            .zip(seeds)
            .map(|((&pair, &k), &seed)| simulate_pair(net, cfg, limit, t0, pair, k, seed))
            .collect();
    }
    let mut out: Vec<PairOutcome> = Vec::new();
    out.resize_with(directed.len(), PairOutcome::default);
    let chunk = directed.len().div_ceil(workers);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(workers);
    let mut slots = out.as_mut_slice();
    let (mut directed, mut ks, mut seeds) = (directed, ks, seeds);
    while !slots.is_empty() {
        let take = chunk.min(slots.len());
        let (slot_chunk, slot_rest) = slots.split_at_mut(take);
        let (pair_chunk, pair_rest) = directed.split_at(take);
        let (ks_chunk, ks_rest) = ks.split_at(take);
        let (seed_chunk, seed_rest) = seeds.split_at(take);
        (slots, directed, ks, seeds) = (slot_rest, pair_rest, ks_rest, seed_rest);
        tasks.push(Box::new(move || {
            for (slot, ((&pair, &k), &seed)) in
                slot_chunk.iter_mut().zip(pair_chunk.iter().zip(ks_chunk).zip(seed_chunk))
            {
                *slot = simulate_pair(net, cfg, limit, t0, pair, k, seed);
            }
        }));
    }
    SweepPool::global().run(tasks);
    out
}

/// Executes one stage of endpoint-disjoint directed probe pairs: every
/// pair gets one outstanding probe, a reply triggers the pair's next
/// probe until its per-pair quota `ks[pid]` of round trips is done, and
/// each round trip is recorded into `stats`. Shared by the staged and
/// focused schemes — the stage protocol is identical, only the pair
/// schedule (and per-pair sampling depth) differs.
///
/// `seeds` carries one pre-drawn RNG substream seed per pair — the
/// driver draws them sequentially in pair order up front, so seeded
/// traces are byte-identical for every `workers` value: the pairs
/// simulate independently (possibly across threads, see
/// [`simulate_stage`]) and their outcomes merge in deterministic
/// `(completion_time, pair_id)` order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stage(
    net: &Network,
    cfg: &MeasureConfig,
    t0: f64,
    directed: &[(usize, usize)],
    ks: &[usize],
    seeds: &[u64],
    workers: usize,
    stats: &mut PairwiseStats,
    tracker: &mut SnapshotTracker,
) -> StageOutcome {
    debug_assert_eq!(directed.len(), ks.len());
    debug_assert_eq!(directed.len(), seeds.len());
    let limit = cfg.max_duration_ms.unwrap_or(f64::INFINITY);
    let workers = workers.clamp(1, directed.len().max(1));
    let outcomes = simulate_stage(net, cfg, limit, t0, directed, ks, seeds, workers);

    let merge_start = std::time::Instant::now();
    let mut outcome = StageOutcome { end: t0, workers, ..StageOutcome::default() };
    for (pid, o) in outcomes.iter().enumerate() {
        outcome.round_trips += o.samples.len() as u64;
        outcome.sent += o.sent;
        outcome.delivered += o.delivered;
        outcome.lost += o.lost;
        outcome.end = outcome.end.max(o.end);
        if o.dark {
            outcome.dark.push(pid);
        }
    }
    if tracker.active() {
        // Snapshotting replays the round trips in global completion
        // order, exactly as the single event loop would have interleaved
        // them (ties break by pair id), consulting the tracker after
        // every sample. Per-link results are identical to the batch path
        // below — each link only ever sees its own time-ordered samples.
        let mut events: Vec<(f64, usize, f64)> = Vec::new();
        for (pid, o) in outcomes.iter().enumerate() {
            let (src, dst) = directed[pid];
            stats.record_attempts(src, dst, o.attempts);
            stats.record_timeouts(src, dst, o.timeouts);
            events.extend(o.samples.iter().map(|&(at, rtt)| (at, pid, rtt)));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times").then(a.1.cmp(&b.1)));
        for (at, pid, rtt) in events {
            let (src, dst) = directed[pid];
            stats.record(src, dst, rtt);
            tracker.maybe_snapshot(at, stats);
        }
    } else {
        // Hot path: one batch per directed link (a stage's pairs are
        // endpoint-disjoint, so links are unique), sharded across the
        // pool by `merge_batches` — no serial per-sample loop.
        let batches: Vec<LinkBatch> = outcomes
            .into_iter()
            .zip(directed)
            .map(|(o, &(src, dst))| LinkBatch {
                src,
                dst,
                attempts: o.attempts,
                timeouts: o.timeouts,
                rtts: o.samples.into_iter().map(|(_, rtt)| rtt).collect(),
            })
            .collect();
        stats.merge_batches(batches, workers);
    }
    outcome.merge_ns = merge_start.elapsed().as_nanos() as u64;
    outcome
}

/// Shared snapshot bookkeeping for scheme implementations.
pub(crate) struct SnapshotTracker {
    every: Option<f64>,
    next_at: f64,
    pub(crate) snapshots: Vec<Snapshot>,
}

impl SnapshotTracker {
    pub(crate) fn new(cfg: &MeasureConfig) -> Self {
        Self {
            every: cfg.snapshot_every_ms,
            next_at: cfg.snapshot_every_ms.unwrap_or(0.0),
            snapshots: Vec::new(),
        }
    }

    /// True when snapshotting was requested — i.e. `run_stage` must
    /// replay samples serially in global completion order instead of
    /// taking the batched merge path.
    pub(crate) fn active(&self) -> bool {
        self.every.is_some()
    }

    /// Called after each recorded sample with the current simulated time.
    pub(crate) fn maybe_snapshot(&mut self, now: f64, stats: &PairwiseStats) {
        let Some(every) = self.every else { return };
        while now >= self.next_at {
            self.snapshots.push(Snapshot { at_ms: self.next_at, mean_vector: stats.mean_vector() });
            self.next_at += every;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_one_kb() {
        let cfg = MeasureConfig::default();
        assert_eq!(cfg.probe_size_kb, 1.0);
        assert!(cfg.snapshot_every_ms.is_none());
    }

    #[test]
    fn snapshot_tracker_fires_at_intervals() {
        let cfg = MeasureConfig { snapshot_every_ms: Some(10.0), ..Default::default() };
        let mut tracker = SnapshotTracker::new(&cfg);
        let stats = PairwiseStats::new(2);
        tracker.maybe_snapshot(5.0, &stats);
        assert!(tracker.snapshots.is_empty());
        tracker.maybe_snapshot(25.0, &stats);
        assert_eq!(tracker.snapshots.len(), 2);
        assert_eq!(tracker.snapshots[0].at_ms, 10.0);
        assert_eq!(tracker.snapshots[1].at_ms, 20.0);
    }

    #[test]
    fn snapshot_tracker_disabled_by_default() {
        let cfg = MeasureConfig::default();
        let mut tracker = SnapshotTracker::new(&cfg);
        tracker.maybe_snapshot(1e9, &PairwiseStats::new(2));
        assert!(tracker.snapshots.is_empty());
    }
}

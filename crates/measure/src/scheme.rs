//! Common driver types for the three measurement schemes of paper §5.
//!
//! A scheme runs over a [`Network`]'s discrete-event engine, probing pairs
//! of instances with small TCP-like messages and recording round-trip
//! times into [`PairwiseStats`]. Schemes differ in *how* probes are
//! scheduled — serially (token passing), independently at random
//! (uncoordinated), or in coordinator-chosen disjoint pairs (staged) — and
//! that scheduling determines both accuracy (interference) and wall-clock
//! cost (parallelism).

use cloudia_netsim::{Network, NicParams};

use crate::driver::SweepDriver;
use crate::stats::PairwiseStats;

/// Message kinds used by all schemes.
pub(crate) const KIND_PROBE: u32 = 0;
/// Reply to a probe; completes one RTT observation.
pub(crate) const KIND_REPLY: u32 = 1;
/// Token handoff (token-passing scheme only).
pub(crate) const KIND_TOKEN: u32 = 2;

/// Configuration shared by all measurement schemes.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Probe payload size in KB (paper: 1 KB unless stated).
    pub probe_size_kb: f64,
    /// Endpoint handling parameters for the event engine.
    pub nic: NicParams,
    /// RNG seed (probe jitter, destination choice).
    pub seed: u64,
    /// If set, record a snapshot of the mean-estimate vector every this
    /// many simulated milliseconds (used by the Fig. 5 convergence study).
    pub snapshot_every_ms: Option<f64>,
    /// If set, stop issuing new probes after this much simulated time.
    /// The contract (shared by every scheme, pinned by proptest): no
    /// probe is *issued* at or after the deadline; probes already in
    /// flight complete and are recorded.
    pub max_duration_ms: Option<f64>,
    /// Sender timeout (ms) after which a lost probe or reply is
    /// discovered and a retransmit may be issued.
    pub timeout_ms: f64,
    /// Retransmit budget per scheduled pair (per stage / circulation
    /// visit / launch): after this many timeouts the pair's remaining
    /// quota is forfeited and its coverage recorded as attempted. On a
    /// lossless network the budget is never consulted, so loss-awareness
    /// is free when the network is clean.
    pub retries_per_pair: u32,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            probe_size_kb: 1.0,
            nic: NicParams::default(),
            seed: 0,
            snapshot_every_ms: None,
            max_duration_ms: None,
            timeout_ms: cloudia_netsim::DEFAULT_TIMEOUT_MS,
            retries_per_pair: 3,
        }
    }
}

/// A time-stamped snapshot of the flattened mean-estimate vector.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated time of the snapshot (ms).
    pub at_ms: f64,
    /// Mean estimates over all ordered pairs, row-major, diagonal skipped.
    pub mean_vector: Vec<f64>,
}

/// The result of one measurement run.
#[derive(Debug, Clone)]
pub struct MeasurementReport {
    /// Which scheme produced this report.
    pub scheme: &'static str,
    /// Per-link online summaries.
    pub stats: PairwiseStats,
    /// Total simulated time the measurement occupied (ms).
    pub elapsed_ms: f64,
    /// Number of completed round-trip observations.
    pub round_trips: u64,
    /// Mean-vector snapshots (empty unless requested).
    pub snapshots: Vec<Snapshot>,
}

impl MeasurementReport {
    /// Flattened mean vector at the end of the run.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.stats.mean_vector()
    }
}

/// A pairwise latency measurement scheme.
pub trait Scheme {
    /// Short identifier ("token", "uncoordinated", "staged").
    fn name(&self) -> &'static str;

    /// Builds a resumable stage-granular driver of this scheme over
    /// `net`, recording into the given (possibly pre-accumulated)
    /// statistics — the streaming entry point (see
    /// [`crate::driver::SweepDriver`]). Driving a fresh driver to
    /// exhaustion is bit-identical to [`Scheme::run_onto`].
    ///
    /// # Panics
    /// Panics if `stats` was sized for a different instance count.
    fn driver<'n>(
        &self,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> Box<dyn SweepDriver + 'n>;

    /// Runs the scheme over `net` from empty statistics and returns the
    /// collected estimates.
    fn run(&self, net: &Network, cfg: &MeasureConfig) -> MeasurementReport {
        self.run_onto(net, cfg, PairwiseStats::new(net.len()))
    }

    /// Incremental entry point: runs the scheme over `net` and records new
    /// samples *into* pre-accumulated statistics, so repeated measurement
    /// rounds build per-link history instead of starting from scratch
    /// (the online advisor's streaming measurement path). The returned
    /// report's `round_trips`/`elapsed_ms` cover this run only; its `stats`
    /// carry the full accumulated history.
    ///
    /// This is a thin drive-to-completion wrapper over [`Scheme::driver`].
    ///
    /// # Panics
    /// Panics if `stats` was sized for a different instance count.
    fn run_onto(
        &self,
        net: &Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> MeasurementReport {
        let mut driver = self.driver(net, cfg, stats);
        while driver.step() {}
        driver.finish()
    }
}

/// What one stage execution produced: completed round trips plus the
/// pairs that went dark (retry budget exhausted without a single
/// success this stage) — the driver drops those from later stages so
/// `remaining_pairs`/`planned_remaining` stay truthful under loss.
#[derive(Debug, Default)]
pub(crate) struct StageOutcome {
    /// Round trips completed this stage.
    pub(crate) round_trips: u64,
    /// Pair ids (indices into the stage's `directed` slice) that
    /// exhausted their retry budget with zero successes.
    pub(crate) dark: Vec<usize>,
}

/// Executes one stage of endpoint-disjoint directed probe pairs: every
/// pair gets one outstanding probe, a reply triggers the pair's next
/// probe until its per-pair quota `ks[pid]` of round trips is done, and
/// each round trip is recorded into `stats`. Shared by the staged and
/// focused schemes — the stage protocol is identical, only the pair
/// schedule (and per-pair sampling depth) differs.
///
/// Loss handling: every probe issuance is counted as an attempt; a lost
/// probe or lost reply comes back as the sender's timeout event, is
/// counted as a timeout, and triggers a retransmit while the pair's
/// `cfg.retries_per_pair` budget lasts. A pair that exhausts the budget
/// without one success is reported dark. No probe (initial, follow-up,
/// or retransmit) is issued at or after `cfg.max_duration_ms`.
pub(crate) fn run_stage(
    engine: &mut cloudia_netsim::Engine<'_>,
    directed: &[(usize, usize)],
    ks: &[usize],
    cfg: &MeasureConfig,
    stats: &mut PairwiseStats,
    tracker: &mut SnapshotTracker,
) -> StageOutcome {
    use cloudia_netsim::{InstanceId, MessageSpec};
    debug_assert_eq!(directed.len(), ks.len());
    debug_assert!(ks.iter().all(|&k| k > 0), "every scheduled pair needs a positive quota");
    let limit = cfg.max_duration_ms.unwrap_or(f64::INFINITY);
    let mut remaining = ks.to_vec();
    let mut budget = vec![cfg.retries_per_pair; directed.len()];
    let mut successes = vec![0u64; directed.len()];
    let mut sent_at = vec![0.0f64; directed.len()];
    let mut outcome = StageOutcome::default();

    let probe = |pid: usize, (src, dst): (usize, usize)| MessageSpec {
        src: InstanceId::from_index(src),
        dst: InstanceId::from_index(dst),
        size_kb: cfg.probe_size_kb,
        kind: KIND_PROBE,
        token: pid as u64,
    };

    for (pid, &pair) in directed.iter().enumerate() {
        stats.record_attempt(pair.0, pair.1);
        sent_at[pid] = engine.send(probe(pid, pair));
        remaining[pid] -= 1;
    }

    while let Some(msg) = engine.next_delivery() {
        let pid = msg.spec.token as usize;
        match msg.spec.kind {
            KIND_PROBE if !msg.lost => {
                engine.send(MessageSpec {
                    src: msg.spec.dst,
                    dst: msg.spec.src,
                    size_kb: cfg.probe_size_kb,
                    kind: KIND_REPLY,
                    token: msg.spec.token,
                });
            }
            KIND_PROBE | KIND_REPLY => {
                let pair = directed[pid];
                if msg.lost {
                    // The prober's timeout: the probe (or its reply)
                    // was dropped. Retransmit within budget; otherwise
                    // forfeit the pair's remaining quota.
                    stats.record_timeout(pair.0, pair.1);
                    if budget[pid] > 0 && engine.now() < limit {
                        budget[pid] -= 1;
                        stats.record_attempt(pair.0, pair.1);
                        sent_at[pid] = engine.send(probe(pid, pair));
                    } else if budget[pid] == 0 && successes[pid] == 0 {
                        outcome.dark.push(pid);
                    }
                    continue;
                }
                stats.record(pair.0, pair.1, msg.delivered_at - sent_at[pid]);
                successes[pid] += 1;
                outcome.round_trips += 1;
                tracker.maybe_snapshot(engine.now(), stats);
                if remaining[pid] > 0 && engine.now() < limit {
                    remaining[pid] -= 1;
                    stats.record_attempt(pair.0, pair.1);
                    sent_at[pid] = engine.send(probe(pid, pair));
                }
            }
            other => unreachable!("unexpected message kind {other}"),
        }
    }
    outcome
}

/// Shared snapshot bookkeeping for scheme implementations.
pub(crate) struct SnapshotTracker {
    every: Option<f64>,
    next_at: f64,
    pub(crate) snapshots: Vec<Snapshot>,
}

impl SnapshotTracker {
    pub(crate) fn new(cfg: &MeasureConfig) -> Self {
        Self {
            every: cfg.snapshot_every_ms,
            next_at: cfg.snapshot_every_ms.unwrap_or(0.0),
            snapshots: Vec::new(),
        }
    }

    /// Called after each recorded sample with the current simulated time.
    pub(crate) fn maybe_snapshot(&mut self, now: f64, stats: &PairwiseStats) {
        let Some(every) = self.every else { return };
        while now >= self.next_at {
            self.snapshots.push(Snapshot { at_ms: self.next_at, mean_vector: stats.mean_vector() });
            self.next_at += every;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_one_kb() {
        let cfg = MeasureConfig::default();
        assert_eq!(cfg.probe_size_kb, 1.0);
        assert!(cfg.snapshot_every_ms.is_none());
    }

    #[test]
    fn snapshot_tracker_fires_at_intervals() {
        let cfg = MeasureConfig { snapshot_every_ms: Some(10.0), ..Default::default() };
        let mut tracker = SnapshotTracker::new(&cfg);
        let stats = PairwiseStats::new(2);
        tracker.maybe_snapshot(5.0, &stats);
        assert!(tracker.snapshots.is_empty());
        tracker.maybe_snapshot(25.0, &stats);
        assert_eq!(tracker.snapshots.len(), 2);
        assert_eq!(tracker.snapshots[0].at_ms, 10.0);
        assert_eq!(tracker.snapshots[1].at_ms, 20.0);
    }

    #[test]
    fn snapshot_tracker_disabled_by_default() {
        let cfg = MeasureConfig::default();
        let mut tracker = SnapshotTracker::new(&cfg);
        tracker.maybe_snapshot(1e9, &PairwiseStats::new(2));
        assert!(tracker.snapshots.is_empty());
    }
}

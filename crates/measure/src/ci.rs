//! Confidence intervals on per-link estimates — the error-bounded
//! measurement layer.
//!
//! Every decision the workspace makes downstream of measurement
//! (candidate pruning, change detection, redeployment economics) used to
//! consume *point* estimates: a link probed twice weighed exactly as much
//! as a link probed two hundred times, and a link never probed at all
//! priced as free. This module puts a classical t-interval on every
//! per-link mean so those decisions can demand *proof*:
//!
//! * [`LinkCi`] is built straight from the Welford `count/mean/M2`
//!   columns of [`crate::PairwiseStats`] — no extra per-link state;
//! * fewer than two samples yield an **unbounded** interval (upper bound
//!   `+∞`): `Welford::variance()` reports 0 below two observations, and a
//!   zero-width interval would make a single-sample link look infinitely
//!   certain — the exact overconfidence this layer exists to remove;
//! * censored data widens the interval: a link losing probes reports a
//!   mean conditioned on the probes that *survived*, so the half-width is
//!   inflated by `1 / (1 − loss_rate)` (loss capped at
//!   [`MAX_CENSOR_LOSS`]) from the `attempts/timeouts` columns;
//! * [`t_critical`] inverts the Student-t CDF without tables or
//!   dependencies (Acklam's inverse-normal rational approximation
//!   composed with Hill's AS 396 expansion), accurate to ~1e-3 relative
//!   even at one degree of freedom — precisely where a starved link
//!   lives.
//!
//! Two intervals **separate** when they do not overlap; only separated
//! intervals justify irreversible acts (condemning a pair mid-sweep,
//! alarming a detector, paying a migration).

/// Loss-rate ceiling for censored-data widening. Beyond 75% loss the
/// `1 / (1 − loss)` inflation is capped at 4×: a darker link than that is
/// the dark-link *triage* path's problem (strikes and evacuation), not a
/// widening problem — an unbounded multiplier would drown the interval
/// arithmetic in infinities that the `count == 0` rule already expresses.
pub const MAX_CENSOR_LOSS: f64 = 0.75;

/// A two-sided confidence interval on one directed link's mean RTT.
///
/// Built by [`crate::PairwiseStats::ci`] (or directly via
/// [`LinkCi::from_parts`]) at a caller-chosen confidence level. The
/// interval is clamped to non-negative latencies on the low side and is
/// unbounded (`upper == +∞`) whenever fewer than two samples exist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCi {
    mean: f64,
    lower: f64,
    upper: f64,
    count: u64,
    confidence: f64,
}

impl LinkCi {
    /// Builds the interval from raw Welford parts plus the probe ledger.
    ///
    /// `count/mean/m2` are the per-link Welford columns; `attempts` and
    /// `timeouts` fold probe loss into the width (censored-data
    /// widening). `confidence` must lie strictly in `(0, 1)`.
    pub fn from_parts(
        count: u64,
        mean: f64,
        m2: f64,
        attempts: u64,
        timeouts: u64,
        confidence: f64,
    ) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        if count < 2 {
            // Zero or one sample: no spread estimate exists, so no
            // finite upper bound is defensible.
            let mean = if count == 0 { 0.0 } else { mean };
            return Self { mean, lower: 0.0, upper: f64::INFINITY, count, confidence };
        }
        let variance = m2 / (count - 1) as f64;
        let se = (variance / count as f64).sqrt();
        let mut half = t_critical(confidence, count - 1) * se;
        if attempts > 0 && timeouts > 0 {
            let loss = (timeouts as f64 / attempts as f64).min(MAX_CENSOR_LOSS);
            half /= 1.0 - loss;
        }
        Self { mean, lower: (mean - half).max(0.0), upper: mean + half, count, confidence }
    }

    /// A degenerate zero-width interval pinned at `value` — the diagonal
    /// entries of [`crate::PairwiseStats::ci_matrix`] (a node's latency
    /// to itself is 0 by definition, not by measurement).
    pub fn exact(value: f64, confidence: f64) -> Self {
        Self { mean: value, lower: value, upper: value, count: u64::MAX, confidence }
    }

    /// Point estimate of the mean RTT.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Lower bound (never below 0).
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper bound; `+∞` while fewer than two samples exist.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Samples behind the estimate.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Confidence level the interval was built at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// True once the interval has a finite upper bound (≥ 2 samples).
    pub fn bounded(&self) -> bool {
        self.upper.is_finite()
    }

    /// Interval half-width (`+∞` while unbounded).
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// True if `x` lies inside the interval.
    pub fn covers(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }

    /// True when this link is *provably* slower than `other`: the whole
    /// interval sits above `other`'s — the only evidence strong enough
    /// to condemn a pair or alarm a detector.
    pub fn provably_above(&self, other: &LinkCi) -> bool {
        self.lower > other.upper
    }

    /// True when this link is provably faster than `other`.
    pub fn provably_below(&self, other: &LinkCi) -> bool {
        self.upper < other.lower
    }
}

/// Two-sided Student-t critical value: the `t` with
/// `P(|T_df| ≤ t) = confidence`.
///
/// Hill's AS 396 expansion over Acklam's inverse-normal approximation —
/// no tables, no special-function dependency. Exact closed forms are
/// used at 1 and 2 degrees of freedom (Cauchy and `sqrt(2/(P(2−P)) − 2)`)
/// where series expansions are at their worst; relative error elsewhere
/// is below 1e-3, far inside the noise of the estimates the intervals
/// wrap.
pub fn t_critical(confidence: f64, df: u64) -> f64 {
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1), got {confidence}");
    assert!(df >= 1, "t distribution needs at least 1 degree of freedom");
    let p = 1.0 - confidence; // two-tail probability
    let n = df as f64;
    if df == 1 {
        // Cauchy: quantile in closed form.
        return 1.0 / (std::f64::consts::PI * p / 2.0).tan();
    }
    if df == 2 {
        return (2.0 / (p * (2.0 - p)) - 2.0).sqrt();
    }
    // Hill, G. W. (1970), Algorithm 396: Student's t-quantile. CACM 13.
    let half_pi = std::f64::consts::FRAC_PI_2;
    let a = 1.0 / (n - 0.5);
    let b = 48.0 / (a * a);
    let mut c = ((20700.0 * a / b - 98.0) * a - 16.0) * a + 96.36;
    let d = ((94.5 / (b + c) - 3.0) / b + 1.0) * (a * half_pi).sqrt() * n;
    let mut x = d * p;
    let mut y = x.powf(2.0 / n);
    if y > 0.05 + a {
        // Asymptotic inverse expansion about the normal quantile.
        x = -inverse_normal_cdf(p * 0.5);
        y = x * x;
        if n < 5.0 {
            c += 0.3 * (n - 4.5) * (x + 0.6);
        }
        c += (((0.05 * d * x - 5.0) * x - 7.0) * x - 2.0) * x + b;
        y = (((((0.4 * y + 6.3) * y + 36.0) * y + 94.5) / c - y - 3.0) / b + 1.0) * x;
        y = a * y * y;
        y = if y > 0.002 { y.exp_m1() } else { 0.5 * y * y + y };
    } else {
        y = ((1.0 / (((n + 6.0) / (n * y) - 0.089 * d - 0.822) * (n + 2.0) * 3.0)
            + 0.5 / (n + 4.0))
            * y
            - 1.0)
            * (n + 1.0)
            / (n + 2.0)
            + 1.0 / y;
    }
    (n * y).sqrt()
}

/// Acklam's rational approximation to the standard normal quantile
/// (lower-tail probability `p` in `(0, 1)`; absolute error below
/// 1.15e-9 over the whole range).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_matches_tables() {
        // Two-sided 95% critical values from standard t tables.
        let table = [
            (1, 12.706),
            (2, 4.303),
            (3, 3.182),
            (5, 2.571),
            (10, 2.228),
            (30, 2.042),
            (100, 1.984),
            (1000, 1.962),
        ];
        for (df, expect) in table {
            let got = t_critical(0.95, df);
            assert!(
                (got - expect).abs() / expect < 2e-3,
                "t(0.95, df={df}) = {got}, expected {expect}"
            );
        }
        // 99% spot checks.
        assert!((t_critical(0.99, 5) - 4.032).abs() < 0.02);
        assert!((t_critical(0.99, 30) - 2.750).abs() < 0.01);
        // Large df converges on the normal quantile.
        assert!((t_critical(0.95, 1_000_000) - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn t_critical_is_monotone_in_confidence_and_df() {
        assert!(t_critical(0.99, 10) > t_critical(0.95, 10));
        assert!(t_critical(0.95, 3) > t_critical(0.95, 10));
        assert!(t_critical(0.95, 10) > t_critical(0.95, 100));
    }

    #[test]
    fn fewer_than_two_samples_is_unbounded() {
        let none = LinkCi::from_parts(0, 0.0, 0.0, 0, 0, 0.95);
        assert!(!none.bounded());
        assert_eq!(none.upper(), f64::INFINITY);
        let one = LinkCi::from_parts(1, 42.0, 0.0, 1, 0, 0.95);
        assert!(!one.bounded());
        assert_eq!(one.mean(), 42.0);
        assert_eq!(one.lower(), 0.0);
        // An unbounded link can never be provably above or below anything.
        let tight = LinkCi::from_parts(100, 10.0, 9.0, 100, 0, 0.95);
        assert!(!one.provably_above(&tight));
        assert!(!one.provably_below(&tight));
    }

    #[test]
    fn interval_tightens_with_samples_and_covers_mean() {
        let loose = LinkCi::from_parts(4, 10.0, 12.0, 4, 0, 0.95);
        let tight = LinkCi::from_parts(400, 10.0, 1200.0, 400, 0, 0.95);
        assert!(loose.bounded() && tight.bounded());
        // Same sample variance (4.0), 100× the samples: ~10× narrower
        // before the t-factor, strictly narrower after it.
        assert!(tight.half_width() < loose.half_width());
        assert!(loose.covers(10.0) && tight.covers(10.0));
        assert!(loose.lower() >= 0.0);
    }

    #[test]
    fn censored_links_widen() {
        let clean = LinkCi::from_parts(10, 5.0, 9.0, 10, 0, 0.95);
        let lossy = LinkCi::from_parts(10, 5.0, 9.0, 20, 10, 0.95);
        assert!(lossy.half_width() > clean.half_width());
        assert!((lossy.half_width() - clean.half_width() * 2.0).abs() < 1e-9, "50% loss → 2×");
        // The widening factor caps at 1 / (1 − MAX_CENSOR_LOSS).
        let dark = LinkCi::from_parts(10, 5.0, 9.0, 1000, 999, 0.95);
        assert!((dark.half_width() - clean.half_width() * 4.0).abs() < 1e-9);
    }

    #[test]
    fn separation_is_mutually_exclusive_and_strict() {
        let low = LinkCi::from_parts(50, 5.0, 4.9, 50, 0, 0.95);
        let high = LinkCi::from_parts(50, 9.0, 4.9, 50, 0, 0.95);
        assert!(high.provably_above(&low));
        assert!(low.provably_below(&high));
        assert!(!low.provably_above(&high));
        // Overlapping intervals separate in neither direction.
        let mid = LinkCi::from_parts(4, 7.0, 48.0, 4, 0, 0.95);
        assert!(!mid.provably_above(&low) && !mid.provably_below(&high));
    }

    #[test]
    fn exact_interval_is_zero_width() {
        let zero = LinkCi::exact(0.0, 0.95);
        assert_eq!(zero.half_width(), 0.0);
        assert!(zero.covers(0.0) && !zero.covers(0.1));
    }
}

//! Token-passing measurement (paper §5, approach 1).
//!
//! A unique token circulates among instances. The holder probes one
//! destination, waits for the reply, records the round-trip time, and
//! passes the token on. At most one message is ever in flight, so no
//! measurement interferes with any other — this is the *accuracy baseline*
//! the other schemes are compared against (Fig. 4) — but the total wall
//! time is proportional to the number of samples collected, which does not
//! scale.

use std::collections::{HashMap, HashSet};

use cloudia_netsim::{InstanceId, MessageSpec, Network};

use crate::driver::{norm_pair, SweepDriver};
use crate::scheme::{
    MeasureConfig, MeasurementReport, Scheme, SnapshotTracker, KIND_PROBE, KIND_REPLY, KIND_TOKEN,
};
use crate::stats::PairwiseStats;

/// The token-passing scheme.
#[derive(Debug, Clone)]
pub struct TokenPassing {
    /// Round-trip observations to collect per ordered pair.
    pub samples_per_pair: usize,
}

impl TokenPassing {
    /// Creates a token-passing scheme collecting `samples_per_pair`
    /// observations per ordered pair.
    pub fn new(samples_per_pair: usize) -> Self {
        assert!(samples_per_pair > 0, "need at least one sample per pair");
        Self { samples_per_pair }
    }
}

impl Scheme for TokenPassing {
    fn name(&self) -> &'static str {
        "token"
    }

    fn driver<'n>(
        &self,
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
    ) -> Box<dyn SweepDriver + 'n> {
        Box::new(TokenDriver::new(net, cfg, stats, self.samples_per_pair))
    }
}

/// Streaming driver of the token-passing scheme: one
/// [`SweepDriver::step`] circulates the token once around the ring
/// (`n` visits), so a caller can inspect or prune between circulations.
/// Pruned visits skip the whole visit — probe, reply, *and* token
/// handoff — modelling the coordinator striking the pair off the
/// schedule it hands the token around with.
struct TokenDriver<'n> {
    engine: cloudia_netsim::Engine<'n>,
    cfg: MeasureConfig,
    stats: PairwiseStats,
    tracker: SnapshotTracker,
    n: usize,
    /// Destination rotation per holder: the c-th visit of holder i
    /// probes the c-th other instance (cyclically).
    cursor: Vec<usize>,
    visit: usize,
    total_visits: usize,
    /// Remaining visit count per unordered pair, decremented as the
    /// schedule executes (pruned or not — skipped visits still consume
    /// their cursor slot), so scheduling queries cost O(pairs) instead
    /// of re-simulating the whole rotation.
    visits_left: HashMap<(u32, u32), u64>,
    pruned: HashSet<(u32, u32)>,
    round_trips: u64,
    done: bool,
}

impl<'n> TokenDriver<'n> {
    fn new(
        net: &'n Network,
        cfg: &MeasureConfig,
        stats: PairwiseStats,
        samples_per_pair: usize,
    ) -> Self {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(stats.len(), n, "stats sized for {} instances, network has {n}", stats.len());
        let total_visits = n * (n - 1) * samples_per_pair;
        // Tally the schedule once: every ordered pair is visited
        // `samples_per_pair` times, so each unordered pair gets twice
        // that many visits.
        let mut visits_left = HashMap::with_capacity(n * (n - 1) / 2);
        for a in 0..n as u32 {
            for b in a + 1..n as u32 {
                visits_left.insert((a, b), 2 * samples_per_pair as u64);
            }
        }
        let mut engine = net.engine(cfg.nic, cfg.seed);
        engine.set_timeout_ms(cfg.timeout_ms);
        Self {
            engine,
            cfg: cfg.clone(),
            stats,
            tracker: SnapshotTracker::new(cfg),
            n,
            cursor: vec![0usize; n],
            visit: 0,
            total_visits,
            visits_left,
            pruned: HashSet::new(),
            round_trips: 0,
            done: false,
        }
    }
}

impl SweepDriver for TokenDriver<'_> {
    fn scheme_name(&self) -> &'static str {
        "token"
    }

    fn step(&mut self) -> bool {
        if self.done || self.visit >= self.total_visits {
            self.done = true;
            return false;
        }
        // One full token circulation per step.
        for _ in 0..self.n {
            if self.visit >= self.total_visits {
                break;
            }
            let visit = self.visit;
            let holder = visit % self.n;
            let c = self.cursor[holder];
            self.cursor[holder] += 1;
            // Skip self by offsetting the cycle.
            let dst = (holder + 1 + (c % (self.n - 1))) % self.n;

            if let Some(limit) = self.cfg.max_duration_ms {
                if self.engine.now() >= limit {
                    self.done = true;
                    return true;
                }
            }
            self.visit += 1;
            let pair = norm_pair(holder as u32, dst as u32);
            if let Some(left) = self.visits_left.get_mut(&pair) {
                *left -= 1;
            }
            if self.pruned.contains(&pair) {
                continue;
            }

            // Probe and wait for the reply — strictly serial, so the
            // next delivery is always ours, lost or not. A timeout
            // (lost probe or lost reply) burns one retry; when the
            // visit's budget is gone the holder moves on with the
            // round trip unrecorded.
            let limit = self.cfg.max_duration_ms.unwrap_or(f64::INFINITY);
            let mut budget = self.cfg.retries_per_pair;
            loop {
                self.stats.record_attempt(holder, dst);
                let sent = self.engine.send(MessageSpec {
                    src: InstanceId::from_index(holder),
                    dst: InstanceId::from_index(dst),
                    size_kb: self.cfg.probe_size_kb,
                    kind: KIND_PROBE,
                    token: visit as u64,
                });
                let probe = self.engine.next_delivery().expect("probe in flight");
                debug_assert_eq!(probe.spec.kind, KIND_PROBE);
                if probe.lost {
                    self.stats.record_timeout(holder, dst);
                    if budget > 0 && self.engine.now() < limit {
                        budget -= 1;
                        continue;
                    }
                    break;
                }
                self.engine.send(MessageSpec {
                    src: probe.spec.dst,
                    dst: probe.spec.src,
                    size_kb: self.cfg.probe_size_kb,
                    kind: KIND_REPLY,
                    token: probe.spec.token,
                });
                let reply = self.engine.next_delivery().expect("reply in flight");
                debug_assert_eq!(reply.spec.kind, KIND_REPLY);
                if reply.lost {
                    self.stats.record_timeout(holder, dst);
                    if budget > 0 && self.engine.now() < limit {
                        budget -= 1;
                        continue;
                    }
                    break;
                }
                self.stats.record(holder, dst, reply.delivered_at - sent);
                self.round_trips += 1;
                self.tracker.maybe_snapshot(self.engine.now(), &self.stats);
                break;
            }

            // Pass the token to the next holder (a real small message).
            // A lost handoff is retransmitted a bounded number of times;
            // past that the ring's timeout-based token regeneration is
            // assumed to restore circulation (the lost events already
            // charged the waits), so the schedule position is preserved.
            let next = (holder + 1) % self.n;
            let mut token_budget = self.cfg.retries_per_pair;
            loop {
                self.engine.send(MessageSpec {
                    src: InstanceId::from_index(holder),
                    dst: InstanceId::from_index(next),
                    size_kb: 0.1,
                    kind: KIND_TOKEN,
                    token: visit as u64,
                });
                let handoff = self.engine.next_delivery().expect("token in flight");
                if handoff.lost && token_budget > 0 {
                    token_budget -= 1;
                    continue;
                }
                break;
            }
        }
        if self.visit >= self.total_visits {
            self.done = true;
        }
        true
    }

    fn stats(&self) -> &PairwiseStats {
        &self.stats
    }

    fn round_trips(&self) -> u64 {
        self.round_trips
    }

    fn elapsed_ms(&self) -> f64 {
        self.engine.now()
    }

    fn remaining_pairs(&self) -> Vec<(u32, u32)> {
        if self.done {
            return Vec::new();
        }
        let mut out: Vec<(u32, u32)> = self
            .visits_left
            .iter()
            .filter(|&(pair, &left)| left > 0 && !self.pruned.contains(pair))
            .map(|(&pair, _)| pair)
            .collect();
        out.sort_unstable();
        out
    }

    fn planned_remaining(&self) -> u64 {
        if self.done {
            return 0;
        }
        self.visits_left
            .iter()
            .filter(|(pair, _)| !self.pruned.contains(pair))
            .map(|(_, &left)| left)
            .sum()
    }

    fn retain_pairs(&mut self, keep: &mut dyn FnMut(u32, u32) -> bool) -> u64 {
        // Every future visit of a newly condemned pair is a saved round
        // trip.
        if self.done {
            return 0;
        }
        let mut saved = 0u64;
        for (&pair, &left) in &self.visits_left {
            if left > 0 && !self.pruned.contains(&pair) && !keep(pair.0, pair.1) {
                self.pruned.insert(pair);
                saved += left;
            }
        }
        saved
    }

    fn finish(self: Box<Self>) -> MeasurementReport {
        MeasurementReport {
            scheme: "token",
            elapsed_ms: self.engine.now(),
            round_trips: self.round_trips,
            snapshots: self.tracker.snapshots,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudia_netsim::{Cloud, Provider};

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    #[test]
    fn covers_every_ordered_pair() {
        let net = network(5, 1);
        let report = TokenPassing::new(3).run(&net, &MeasureConfig::default());
        assert_eq!(report.stats.covered_links(), 5 * 4);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(report.stats.link(i, j).count(), 3, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(report.round_trips, 5 * 4 * 3);
    }

    #[test]
    fn estimates_match_truth_without_jitter() {
        // test_quiet has zero jitter, so every sample is the true mean plus
        // the constant handling overhead.
        let net = network(4, 2);
        let cfg = MeasureConfig::default();
        let report = TokenPassing::new(2).run(&net, &cfg);
        let overhead = 4.0 * (cfg.nic.handle_ms + cfg.nic.serialize_ms_per_kb * cfg.probe_size_kb);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    let est = report.stats.link(i as usize, j as usize).mean();
                    let truth = net.mean_rtt(InstanceId(i), InstanceId(j)) + overhead;
                    assert!((est - truth).abs() < 1e-9, "({i},{j}): est {est}, truth {truth}");
                }
            }
        }
    }

    #[test]
    fn elapsed_grows_with_samples() {
        let net = network(4, 3);
        let r1 = TokenPassing::new(1).run(&net, &MeasureConfig::default());
        let r2 = TokenPassing::new(4).run(&net, &MeasureConfig::default());
        assert!(r2.elapsed_ms > r1.elapsed_ms * 3.0);
    }

    #[test]
    fn duration_limit_stops_early() {
        let net = network(6, 4);
        let cfg = MeasureConfig { max_duration_ms: Some(5.0), ..Default::default() };
        let report = TokenPassing::new(100).run(&net, &cfg);
        assert!(report.round_trips < 6 * 5 * 100);
        assert!(report.elapsed_ms < 10.0);
    }

    #[test]
    fn snapshots_requested_are_produced() {
        let net = network(4, 5);
        let cfg = MeasureConfig { snapshot_every_ms: Some(2.0), ..Default::default() };
        let report = TokenPassing::new(3).run(&net, &cfg);
        assert!(!report.snapshots.is_empty());
        assert_eq!(report.snapshots[0].mean_vector.len(), 4 * 3);
    }
}

//! Token-passing measurement (paper §5, approach 1).
//!
//! A unique token circulates among instances. The holder probes one
//! destination, waits for the reply, records the round-trip time, and
//! passes the token on. At most one message is ever in flight, so no
//! measurement interferes with any other — this is the *accuracy baseline*
//! the other schemes are compared against (Fig. 4) — but the total wall
//! time is proportional to the number of samples collected, which does not
//! scale.

use cloudia_netsim::{InstanceId, MessageSpec, Network};

use crate::scheme::{
    MeasureConfig, MeasurementReport, Scheme, SnapshotTracker, KIND_PROBE, KIND_REPLY, KIND_TOKEN,
};
use crate::stats::PairwiseStats;

/// The token-passing scheme.
#[derive(Debug, Clone)]
pub struct TokenPassing {
    /// Round-trip observations to collect per ordered pair.
    pub samples_per_pair: usize,
}

impl TokenPassing {
    /// Creates a token-passing scheme collecting `samples_per_pair`
    /// observations per ordered pair.
    pub fn new(samples_per_pair: usize) -> Self {
        assert!(samples_per_pair > 0, "need at least one sample per pair");
        Self { samples_per_pair }
    }
}

impl Scheme for TokenPassing {
    fn name(&self) -> &'static str {
        "token"
    }

    fn run_onto(
        &self,
        net: &Network,
        cfg: &MeasureConfig,
        mut stats: PairwiseStats,
    ) -> MeasurementReport {
        let n = net.len();
        assert!(n >= 2, "need at least two instances to measure");
        assert_eq!(stats.len(), n, "stats sized for {} instances, network has {n}", stats.len());
        let mut engine = net.engine(cfg.nic, cfg.seed);
        let mut tracker = SnapshotTracker::new(cfg);
        let mut round_trips = 0u64;

        // Destination rotation per holder: the c-th visit of holder i
        // probes the c-th other instance (cyclically).
        let mut cursor = vec![0usize; n];

        let total_visits = n * (n - 1) * self.samples_per_pair;
        'outer: for visit in 0..total_visits {
            let holder = visit % n;
            let c = cursor[holder];
            cursor[holder] += 1;
            // Skip self by offsetting the cycle.
            let dst = (holder + 1 + (c % (n - 1))) % n;

            if let Some(limit) = cfg.max_duration_ms {
                if engine.now() >= limit {
                    break 'outer;
                }
            }

            // Probe and wait for the reply — strictly serial.
            let sent = engine.send(MessageSpec {
                src: InstanceId::from_index(holder),
                dst: InstanceId::from_index(dst),
                size_kb: cfg.probe_size_kb,
                kind: KIND_PROBE,
                token: visit as u64,
            });
            let probe = engine.next_delivery().expect("probe in flight");
            debug_assert_eq!(probe.spec.kind, KIND_PROBE);
            engine.send(MessageSpec {
                src: probe.spec.dst,
                dst: probe.spec.src,
                size_kb: cfg.probe_size_kb,
                kind: KIND_REPLY,
                token: probe.spec.token,
            });
            let reply = engine.next_delivery().expect("reply in flight");
            stats.record(holder, dst, reply.delivered_at - sent);
            round_trips += 1;
            tracker.maybe_snapshot(engine.now(), &stats);

            // Pass the token to the next holder (a real small message).
            let next = (holder + 1) % n;
            engine.send(MessageSpec {
                src: InstanceId::from_index(holder),
                dst: InstanceId::from_index(next),
                size_kb: 0.1,
                kind: KIND_TOKEN,
                token: visit as u64,
            });
            engine.next_delivery();
        }

        MeasurementReport {
            scheme: "token",
            elapsed_ms: engine.now(),
            round_trips,
            snapshots: tracker.snapshots,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudia_netsim::{Cloud, Provider};

    fn network(n: usize, seed: u64) -> Network {
        let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
        let alloc = cloud.allocate(n);
        cloud.network(&alloc)
    }

    #[test]
    fn covers_every_ordered_pair() {
        let net = network(5, 1);
        let report = TokenPassing::new(3).run(&net, &MeasureConfig::default());
        assert_eq!(report.stats.covered_links(), 5 * 4);
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(report.stats.link(i, j).count(), 3, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(report.round_trips, 5 * 4 * 3);
    }

    #[test]
    fn estimates_match_truth_without_jitter() {
        // test_quiet has zero jitter, so every sample is the true mean plus
        // the constant handling overhead.
        let net = network(4, 2);
        let cfg = MeasureConfig::default();
        let report = TokenPassing::new(2).run(&net, &cfg);
        let overhead = 4.0 * (cfg.nic.handle_ms + cfg.nic.serialize_ms_per_kb * cfg.probe_size_kb);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    let est = report.stats.link(i as usize, j as usize).mean();
                    let truth = net.mean_rtt(InstanceId(i), InstanceId(j)) + overhead;
                    assert!((est - truth).abs() < 1e-9, "({i},{j}): est {est}, truth {truth}");
                }
            }
        }
    }

    #[test]
    fn elapsed_grows_with_samples() {
        let net = network(4, 3);
        let r1 = TokenPassing::new(1).run(&net, &MeasureConfig::default());
        let r2 = TokenPassing::new(4).run(&net, &MeasureConfig::default());
        assert!(r2.elapsed_ms > r1.elapsed_ms * 3.0);
    }

    #[test]
    fn duration_limit_stops_early() {
        let net = network(6, 4);
        let cfg = MeasureConfig { max_duration_ms: Some(5.0), ..Default::default() };
        let report = TokenPassing::new(100).run(&net, &cfg);
        assert!(report.round_trips < 6 * 5 * 100);
        assert!(report.elapsed_ms < 10.0);
    }

    #[test]
    fn snapshots_requested_are_produced() {
        let net = network(4, 5);
        let cfg = MeasureConfig { snapshot_every_ms: Some(2.0), ..Default::default() };
        let report = TokenPassing::new(3).run(&net, &cfg);
        assert!(!report.snapshots.is_empty());
        assert_eq!(report.snapshots[0].mean_vector.len(), 4 * 3);
    }
}

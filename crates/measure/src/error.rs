//! Accuracy comparison of latency vectors (paper §6.2).
//!
//! The paper treats the set of pairwise mean latencies as one
//! high-dimensional vector. Because ClouDiA only uses latencies to *rank*
//! links, a scheme that over- or under-estimates every link by the same
//! factor is as good as a perfect one; vectors are therefore normalized to
//! unit (Euclidean) norm before comparison. Fig. 4 plots the CDF of the
//! per-dimension relative error against the token-passing baseline; Fig. 5
//! plots the root-mean-square error of partial observations against the
//! final estimate.

/// Normalizes a vector to unit Euclidean norm. Returns a zero vector for a
/// zero input.
pub fn normalize_unit(v: &[f64]) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 {
        return vec![0.0; v.len()];
    }
    v.iter().map(|x| x / norm).collect()
}

/// Per-dimension relative error of `candidate` against `baseline`, after
/// both are unit-normalized (paper Fig. 4's "normalized relative error").
///
/// Dimensions where the baseline is zero (e.g. unmeasured links) are
/// skipped.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn normalized_relative_errors(candidate: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(candidate.len(), baseline.len(), "vector length mismatch");
    let c = normalize_unit(candidate);
    let b = normalize_unit(baseline);
    c.iter().zip(&b).filter(|&(_, &bb)| bb != 0.0).map(|(&cc, &bb)| (cc - bb).abs() / bb).collect()
}

/// Root-mean-square error between two vectors (not normalized — Fig. 5
/// compares partial estimates of the *same* scheme against its own final
/// estimate, so scale is shared).
///
/// # Panics
/// Panics if the vectors have different lengths or are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    assert!(!a.is_empty(), "rmse of empty vectors");
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Empirical CDF: returns `(value, fraction ≤ value)` pairs in ascending
/// order, one per sample.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    sorted.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n)).collect()
}

/// The fraction of `values` that are at most `x`.
pub fn cdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
}

/// The `q`-quantile of `values` (nearest-rank).
///
/// # Panics
/// Panics if `values` is empty or `q` is outside [0, 1].
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Pearson correlation coefficient between two vectors.
///
/// # Panics
/// Panics if the vectors differ in length or have fewer than 2 elements.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    assert!(a.len() >= 2, "need at least 2 points");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_unit_norm_is_one() {
        let v = normalize_unit(&[3.0, 4.0]);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
        let zero = normalize_unit(&[0.0, 0.0]);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn scaled_vectors_have_zero_relative_error() {
        let base = [0.5, 0.7, 1.2, 0.3];
        let scaled: Vec<f64> = base.iter().map(|x| x * 3.7).collect();
        let errs = normalized_relative_errors(&scaled, &base);
        assert!(errs.iter().all(|&e| e < 1e-12), "{errs:?}");
    }

    #[test]
    fn relative_error_detects_distortion() {
        let base = [1.0, 1.0, 1.0, 1.0];
        let cand = [1.0, 1.0, 1.0, 2.0]; // one link overestimated
        let errs = normalized_relative_errors(&cand, &base);
        assert_eq!(errs.len(), 4);
        assert!(errs[3] > 0.5, "{errs:?}");
        assert!(errs[0] > 0.0); // normalization spreads the error
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn cdf_at_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(cdf_at(&v, 2.5), 0.5);
        assert_eq!(cdf_at(&v, 0.0), 0.0);
        assert_eq!(cdf_at(&v, 4.0), 1.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.9), 5.0);
    }

    #[test]
    fn pearson_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}

//! # cloudia-bench — figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (`src/bin/figNN_*.rs`),
//! each printing the same series the paper plots as tab-separated columns,
//! plus Criterion micro-benchmarks (`benches/`). This library holds the
//! shared plumbing: standard experiment setups, CDF/series printing, and
//! the scale switch.
//!
//! ## Scale
//!
//! Default scales are chosen so the full harness finishes in minutes on a
//! laptop; set `CLOUDIA_SCALE=paper` to run at the paper's sizes (100–150
//! instances, multi-minute solver budgets).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use cloudia_core::{Advisor, AdvisorConfig, CommGraph, CostMatrix, LatencyMetric};
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_netsim::{Cloud, Network, Provider};
use cloudia_obs::{Json, RunRecorder};

/// The command-line surface shared by every `ext_*` harness binary,
/// parsed once instead of copy-pasted per bin:
///
/// * `--smoke` — CI mode: quick scale, acceptance criteria asserted;
/// * `--trace PATH` — write a schema-versioned JSONL run trace
///   ([`ExtArgs::recorder`]);
/// * `--no-metrics` — disable telemetry collection at runtime (the
///   overhead baseline arm).
///
/// Unknown flags are left alone — bins with extra switches keep reading
/// `std::env::args()` themselves.
#[derive(Debug, Clone)]
pub struct ExtArgs {
    /// CI smoke mode (`--smoke`): quick scale plus asserted criteria.
    pub smoke: bool,
    /// Experiment scale: [`Scale::Quick`] under `--smoke`, else from
    /// `CLOUDIA_SCALE`.
    pub scale: Scale,
    /// Trace file path (`--trace PATH`).
    pub trace: Option<String>,
    /// False when `--no-metrics` disabled telemetry for this run.
    pub metrics_enabled: bool,
}

impl ExtArgs {
    /// Parses the shared flags from `std::env::args()`. `--no-metrics`
    /// takes effect immediately ([`cloudia_obs::set_enabled`]).
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let no_metrics = args.iter().any(|a| a == "--no-metrics");
        if no_metrics {
            cloudia_obs::set_enabled(false);
        }
        let trace = args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
        Self {
            smoke,
            scale: if smoke { Scale::Quick } else { Scale::from_env() },
            trace,
            metrics_enabled: !no_metrics,
        }
    }

    /// Opens the JSONL trace recorder when `--trace` was given; the meta
    /// line carries the bin name and the smoke/scale switches. Exits
    /// non-zero if the file cannot be created.
    pub fn recorder(&self, bin: &str) -> Option<RunRecorder> {
        self.trace.as_ref().map(|path| {
            let meta = Json::obj()
                .field("bin", bin)
                .field("smoke", self.smoke)
                .field("scale", format!("{:?}", self.scale));
            RunRecorder::to_file(std::path::Path::new(path), meta).unwrap_or_else(|e| {
                eprintln!("cannot open trace file `{path}`: {e}");
                std::process::exit(1);
            })
        })
    }
}

/// The `BENCH_<name>.json` document shape: schema tag and bench name
/// first, then the payload's own fields merged in (a non-object payload
/// lands under a `payload` key).
pub fn bench_json(name: &str, payload: Json) -> Json {
    let mut out = Json::obj().field("schema", "cloudia.bench.v1").field("name", name);
    if let Json::Obj(fields) = payload {
        for (k, v) in fields {
            out = out.field(&k, v);
        }
    } else {
        out = out.field("payload", payload);
    }
    out
}

/// Writes a machine-readable bench result as `BENCH_<name>.json` in the
/// current directory (shape per [`bench_json`]). Returns the path
/// written.
pub fn write_bench_json(name: &str, payload: Json) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{}\n", bench_json(name, payload).encode()))?;
    Ok(path)
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for quick runs (default).
    Quick,
    /// The paper's sizes (`CLOUDIA_SCALE=paper`).
    Paper,
}

impl Scale {
    /// Reads the scale from the `CLOUDIA_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("CLOUDIA_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Picks a value by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Prints a figure header.
pub fn header(fig: &str, caption: &str, scale: Scale) {
    println!("# {fig} — {caption}");
    println!("# scale: {scale:?} (set CLOUDIA_SCALE=paper for paper sizes)");
}

/// Buffering figure reporter: prints exactly what the free-standing
/// [`header`]/[`row`]/[`print_cdf`] helpers print while accumulating the
/// same tables and CDFs, then writes them as `BENCH_<name>.json` on
/// [`Fig::finish`] — so every figure bin leaves a machine-readable
/// artifact next to its stdout table (the telemetry plane's sink for
/// cross-run comparisons).
pub struct Fig {
    name: String,
    caption: String,
    scale: Scale,
    columns: Vec<String>,
    rows: Vec<Json>,
    cdfs: Vec<Json>,
    notes: Vec<(String, Json)>,
}

impl Fig {
    /// Prints the figure header (with the human-facing `title`, e.g.
    /// "Figure 4") and opens the recorder; `name` is the artifact slug
    /// (`BENCH_<name>.json`).
    pub fn new(name: &str, title: &str, caption: &str, scale: Scale) -> Self {
        header(title, caption, scale);
        Self {
            name: name.replace('-', "_"),
            caption: caption.to_string(),
            scale,
            columns: Vec::new(),
            rows: Vec::new(),
            cdfs: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Prints (and records) the table's column names.
    pub fn columns(&mut self, cols: &[&str]) {
        println!("{}", cols.join("\t"));
        self.columns = cols.iter().map(|c| c.to_string()).collect();
    }

    /// Prints (and records) one tab-separated table row.
    pub fn row(&mut self, cells: &[String]) {
        row(cells);
        self.rows.push(Json::Arr(cells.iter().map(|c| Json::from(c.as_str())).collect()));
    }

    /// Prints (and records) an empirical CDF, downsampled to at most
    /// `points` rows — the recorded points are exactly the printed ones.
    pub fn cdf(&mut self, label: &str, values: &[f64], points: usize) {
        let cdf = cloudia_measure::error::empirical_cdf(values);
        let step = (cdf.len() / points.max(1)).max(1);
        println!("{label}\tvalue\tcdf");
        let mut sampled = Vec::new();
        for (i, &(v, p)) in cdf.iter().enumerate() {
            if i % step == 0 || i == cdf.len() - 1 {
                row(&[label.to_string(), format!("{v:.4}"), format!("{p:.4}")]);
                sampled.push(Json::Arr(vec![Json::from(v), Json::from(p)]));
            }
        }
        self.cdfs.push(Json::obj().field("label", label).field("points", Json::Arr(sampled)));
    }

    /// Attaches an arbitrary extra field to the JSON artifact (headline
    /// numbers, assertions, fitted slopes — whatever the figure's
    /// punchline is).
    pub fn note(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.notes.push((key.to_string(), value.into()));
        self
    }

    /// Writes `BENCH_<name>.json` and reports the path; exits non-zero
    /// if the artifact cannot be written (CI treats a missing artifact
    /// as a failed run, same as the ext bins).
    pub fn finish(self) {
        let mut payload = Json::obj()
            .field("caption", self.caption.as_str())
            .field("scale", format!("{:?}", self.scale).as_str())
            .field(
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::from(c.as_str())).collect()),
            )
            .field("rows", Json::Arr(self.rows))
            .field("cdfs", Json::Arr(self.cdfs));
        for (key, value) in self.notes {
            payload = payload.field(&key, value);
        }
        match write_bench_json(&self.name, payload) {
            Ok(path) => println!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("FAIL: cannot write BENCH_{}.json: {e}", self.name);
                std::process::exit(1);
            }
        }
    }
}

/// Prints a tab-separated row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Prints an empirical CDF as (value, cdf) rows, downsampled to at most
/// `points` rows.
pub fn print_cdf(label: &str, values: &[f64], points: usize) {
    let cdf = cloudia_measure::error::empirical_cdf(values);
    let step = (cdf.len() / points.max(1)).max(1);
    println!("{label}\tvalue\tcdf");
    for (i, &(v, p)) in cdf.iter().enumerate() {
        if i % step == 0 || i == cdf.len() - 1 {
            row(&[label.to_string(), format!("{v:.4}"), format!("{p:.4}")]);
        }
    }
}

/// Boots a provider, allocates `n` instances, returns the network.
pub fn standard_network(provider: Provider, n: usize, seed: u64) -> Network {
    let mut cloud = Cloud::boot(provider, seed);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

/// All ordered-pair ground-truth mean RTTs of a network.
pub fn true_mean_vector(net: &Network) -> Vec<f64> {
    let n = net.len();
    let mut out = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                out.push(net.mean_rtt(
                    cloudia_netsim::InstanceId::from_index(i),
                    cloudia_netsim::InstanceId::from_index(j),
                ));
            }
        }
    }
    out
}

/// Runs the staged measurement the advisor would run and returns the cost
/// matrix under a metric.
pub fn measured_costs(
    net: &Network,
    metric: LatencyMetric,
    ks: usize,
    sweeps: usize,
    seed: u64,
) -> CostMatrix {
    let report =
        Staged::new(ks, sweeps).run(net, &MeasureConfig { seed, ..MeasureConfig::default() });
    match metric.try_cost_matrix(&report.stats) {
        Ok(costs) => costs,
        Err(e) => {
            eprintln!("measurement produced unusable cost data: {e}");
            std::process::exit(1);
        }
    }
}

/// Builds an advisor sized for harness runs.
pub fn harness_advisor(objective: cloudia_core::Objective, search_s: f64) -> Advisor {
    Advisor::new(AdvisorConfig { objective, search_time_s: search_s, ..AdvisorConfig::fast() })
}

/// The three paper workload graphs at a given scale: (behavioral mesh,
/// aggregation tree, key-value bipartite).
pub fn workload_graphs(scale: Scale) -> (CommGraph, CommGraph, CommGraph) {
    match scale {
        Scale::Quick => (
            CommGraph::mesh_2d(6, 6),
            CommGraph::aggregation_tree(6, 2),
            CommGraph::bipartite(8, 28),
        ),
        Scale::Paper => (
            CommGraph::mesh_2d(10, 10),
            CommGraph::aggregation_tree(7, 2),
            CommGraph::bipartite(20, 80),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn bench_json_merges_payload_fields_under_the_schema_tag() {
        let doc = bench_json("ext_demo", Json::obj().field("savings", 0.4).field("ok", true));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("cloudia.bench.v1"));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("ext_demo"));
        assert_eq!(doc.get("savings").and_then(Json::as_f64), Some(0.4));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        // Non-object payloads nest under "payload" instead of merging.
        let doc = bench_json("ext_demo", Json::from(7u64));
        assert_eq!(doc.get("payload").and_then(Json::as_u64), Some(7));
        // The document round-trips through the parser.
        assert!(Json::parse(&doc.encode()).is_ok());
    }

    #[test]
    fn standard_network_sizes() {
        let net = standard_network(Provider::test_quiet(), 8, 1);
        assert_eq!(net.len(), 8);
        assert_eq!(true_mean_vector(&net).len(), 8 * 7);
    }

    #[test]
    fn workload_graph_sizes() {
        let (sim, agg, kv) = workload_graphs(Scale::Quick);
        assert_eq!(sim.num_nodes(), 36);
        assert_eq!(agg.num_nodes(), 43);
        assert_eq!(kv.num_nodes(), 36);
        let (sim, agg, kv) = workload_graphs(Scale::Paper);
        assert_eq!(sim.num_nodes(), 100);
        assert_eq!(agg.num_nodes(), 57);
        assert_eq!(kv.num_nodes(), 100);
    }

    #[test]
    fn measured_costs_square() {
        let net = standard_network(Provider::test_quiet(), 5, 2);
        let c = measured_costs(&net, LatencyMetric::Mean, 2, 2, 0);
        assert_eq!(c.len(), 5);
    }
}

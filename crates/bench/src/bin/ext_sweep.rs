//! Extension: stage-streaming sweeps with mid-sweep tournament pruning.
//!
//! Three online-advisor arms ride the **identical** drift trajectory and
//! probe randomness (`ReplayStream` over recorded snapshots):
//!
//! * **uniform** — full staged tournament sweeps every epoch, run as an
//!   opaque batch (the pre-streaming behaviour);
//! * **pruned** — the same uniform sweeps, but executed stage by stage on
//!   the streaming driver with the candidate prune rule evaluated
//!   between stages: pairs whose measured quantiles already prove both
//!   endpoints outside every node's candidate pool are dropped while the
//!   sweep is still in flight (deployed/flagged/stale pairs never are);
//! * **focused+pruned** — trigger-driven focused rounds with pruning on
//!   top, the saved round trips re-invested into deeper sampling of
//!   flagged links (`probe_ks` escalation).
//!
//! The scenario — an active drift head followed by a quiet tail, all
//! arms under the same adaptive candidate pool — is the shared
//! [`cloudia_online::scenario::FocusScenario`], the same one `ext_focus`
//! and the differential tests assert, so the contract cannot fork.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criteria:
//! the pruned arm saves ≥ 30 % of uniform's probe round trips while its
//! time-averaged ground-truth deployment cost stays within 2 % of
//! uniform's. Exits non-zero otherwise.

use cloudia_bench::{header, row, Scale};
use cloudia_online::{ArmOptions, FocusScenario, ProbePolicy};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Quick } else { Scale::from_env() };
    header("ext-sweep", "mid-sweep tournament pruning vs full batch sweeps", scale);

    let mut scenario = FocusScenario::default();
    if !smoke {
        scenario.mesh = scale.pick((3, 4), (5, 6));
        scenario.instances = scale.pick(56, 120);
        scenario.head_epochs = scale.pick(16, 32);
        scenario.tail_epochs = scale.pick(16, 32);
        scenario.solve_seconds = scale.pick(0.5, 2.0);
    }
    println!(
        "# instance: {}x{} mesh on {} instances, {} active + {} quiet epochs x {} h, repair \
         budget {}s",
        scenario.mesh.0,
        scenario.mesh.1,
        scenario.instances,
        scenario.head_epochs,
        scenario.tail_epochs,
        scenario.epoch_hours,
        scenario.solve_seconds,
    );

    let built = scenario.build();
    let uniform = built.run_arm(ProbePolicy::Uniform);
    let pruned = built.run_arm_with(ArmOptions {
        probe_policy: ProbePolicy::Uniform,
        prune_during_sweep: true,
        spot_check_probes: 0,
    });
    let focused_pruned = built.run_arm_with(ArmOptions {
        probe_policy: scenario.focused_policy(),
        prune_during_sweep: true,
        spot_check_probes: 0,
    });

    println!("policy\tavg_cost_ms\tprobe_round_trips\tsaved\tdeep\tresolves\tmigrations");
    for (name, arm) in
        [("uniform", &uniform), ("pruned", &pruned), ("focused+pruned", &focused_pruned)]
    {
        row(&[
            name.to_string(),
            format!("{:.4}", arm.avg_cost),
            format!("{}", arm.probes),
            format!("{}", arm.saved_round_trips),
            format!("{}", arm.deep_probe_round_trips),
            format!("{}", arm.resolves),
            format!("{}", arm.migrations),
        ]);
    }
    let savings = 1.0 - pruned.probes as f64 / uniform.probes as f64;
    let cost_ratio = pruned.avg_cost / uniform.avg_cost.max(f64::MIN_POSITIVE);
    println!(
        "# pruned sweeps save {:.1}% of uniform's round trips at {:+.2}% cost",
        savings * 100.0,
        (cost_ratio - 1.0) * 100.0
    );
    println!(
        "# focused+pruned spends {:.1}% of uniform's budget, {} round trips re-invested deep",
        100.0 * focused_pruned.probes as f64 / uniform.probes as f64,
        focused_pruned.deep_probe_round_trips,
    );

    if smoke {
        let mut failures = Vec::new();
        if savings < 0.30 {
            failures.push(format!(
                "pruning saved only {:.1}% of uniform's round trips (< 30%)",
                savings * 100.0
            ));
        }
        if cost_ratio > 1.02 {
            failures.push(format!(
                "pruned time-averaged cost {:.4} is {:.2}% above uniform's {:.4} (> 2%)",
                pruned.avg_cost,
                (cost_ratio - 1.0) * 100.0,
                uniform.avg_cost
            ));
        }
        if pruned.saved_round_trips == 0 {
            failures.push("the pruned arm never reported mid-sweep savings".to_string());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("# smoke OK: >= 30% round trips saved, cost within 2% of full sweeps");
    }
}

//! Extension: stage-streaming sweeps with mid-sweep tournament pruning.
//!
//! Three online-advisor arms ride the **identical** drift trajectory and
//! probe randomness (`ReplayStream` over recorded snapshots):
//!
//! * **uniform** — full staged tournament sweeps every epoch, run as an
//!   opaque batch (the pre-streaming behaviour);
//! * **pruned** — the same uniform sweeps, but executed stage by stage on
//!   the streaming driver with the candidate prune rule evaluated
//!   between stages: pairs whose measured quantiles already prove both
//!   endpoints outside every node's candidate pool are dropped while the
//!   sweep is still in flight (deployed/flagged/stale pairs never are);
//! * **anytime** — the pruned sweeps with the error-bounded layer on: a
//!   CI-backed prune rule (condemnation requires interval separation,
//!   not point-estimate separation) plus the anytime early stop that
//!   ends a stage once every remaining prune/pool decision is CI-stable
//!   at 95% confidence;
//! * **focused+pruned** — trigger-driven focused rounds with pruning on
//!   top, the saved round trips re-invested into deeper sampling of
//!   flagged links (`probe_ks` escalation).
//!
//! The scenario — an active drift head followed by a quiet tail, all
//! arms under the same adaptive candidate pool — is the shared
//! [`cloudia_online::scenario::FocusScenario`], the same one `ext_focus`
//! and the differential tests assert, so the contract cannot fork.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criteria:
//! the pruned arm saves ≥ 30 % of uniform's probe round trips while its
//! time-averaged ground-truth deployment cost stays within 2 % of
//! uniform's; the anytime arm saves ≥ 20 % *additional* round trips over
//! the pruned arm while its realized ground-truth cost stays within the
//! stated error bound (`1 + (1 − confidence)` of uniform's); and the
//! telemetry plane's overhead on the measurement hot path stays within
//! 3 % of the `--no-metrics` baseline. Exits non-zero otherwise.
//!
//! `--trace PATH` streams the focused+pruned arm's full event history —
//! plus the final metrics snapshot and span log — into a
//! schema-versioned JSONL trace; the machine-readable arm comparison
//! always lands in `BENCH_ext_sweep.json`.

use cloudia_bench::{header, row, write_bench_json, ExtArgs};
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_obs::Json;
use cloudia_online::{ArmOptions, FocusScenario, ProbePolicy};

/// Telemetry-on vs telemetry-off wall-time ratio of identical staged
/// sweeps over a scratch network. The two arms are *interleaved* rep by
/// rep — each rep times both settings back to back under the same
/// machine conditions — and each arm takes the minimum over all reps,
/// so scheduler noise and frequency drift cannot inflate one side.
fn telemetry_overhead_ratio() -> f64 {
    let net = cloudia_bench::standard_network(cloudia_netsim::Provider::test_quiet(), 24, 7);
    let cfg = MeasureConfig { seed: 7, ..MeasureConfig::default() };
    let scheme = Staged::new(3, 2);
    let time_runs = |enabled: bool, runs: usize| {
        cloudia_obs::set_enabled(enabled);
        let t0 = std::time::Instant::now();
        for _ in 0..runs {
            std::hint::black_box(scheme.run(std::hint::black_box(&net), &cfg));
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm both arms (allocator, caches, branch predictors).
    time_runs(true, 3);
    time_runs(false, 3);
    let (runs, reps) = (16, 5);
    let (mut on, mut off) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        on = on.min(time_runs(true, runs));
        off = off.min(time_runs(false, runs));
    }
    on / off.max(f64::MIN_POSITIVE)
}

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-sweep", "mid-sweep tournament pruning vs full batch sweeps", scale);

    let mut scenario = FocusScenario::default();
    if !smoke {
        scenario.mesh = scale.pick((3, 4), (5, 6));
        scenario.instances = scale.pick(56, 120);
        scenario.head_epochs = scale.pick(16, 32);
        scenario.tail_epochs = scale.pick(16, 32);
        scenario.solve_seconds = scale.pick(0.5, 2.0);
    }
    println!(
        "# instance: {}x{} mesh on {} instances, {} active + {} quiet epochs x {} h, repair \
         budget {}s",
        scenario.mesh.0,
        scenario.mesh.1,
        scenario.instances,
        scenario.head_epochs,
        scenario.tail_epochs,
        scenario.epoch_hours,
        scenario.solve_seconds,
    );

    let built = scenario.build();
    let uniform = built.run_arm(ProbePolicy::Uniform);
    let pruned = built.run_arm_with(ArmOptions {
        probe_policy: ProbePolicy::Uniform,
        prune_during_sweep: true,
        spot_check_probes: 0,
        confidence: None,
        anytime: false,
    });
    // The error-bounded arm: CI-backed pruning plus the anytime early
    // stop, at this confidence level. Its realized cost bound is
    // asserted against `1 + (1 - confidence)` under --smoke.
    let confidence = 0.95;
    let anytime = built.run_arm_with(ArmOptions {
        probe_policy: ProbePolicy::Uniform,
        prune_during_sweep: true,
        spot_check_probes: 0,
        confidence: Some(confidence),
        anytime: true,
    });
    let focused_opts = ArmOptions {
        probe_policy: scenario.focused_policy(),
        prune_during_sweep: true,
        spot_check_probes: 0,
        confidence: None,
        anytime: false,
    };
    // With `--trace` the focused+pruned arm streams its full event
    // history into the JSONL trace as it runs.
    let (focused_pruned, recorder) = match args.recorder("ext_sweep") {
        Some(rec) => {
            let (arm, rec) = built.run_arm_traced(focused_opts, rec);
            (arm, Some(rec))
        }
        None => (built.run_arm_with(focused_opts), None),
    };

    println!("policy\tavg_cost_ms\tprobe_round_trips\tsaved\tdeep\tresolves\tmigrations");
    for (name, arm) in [
        ("uniform", &uniform),
        ("pruned", &pruned),
        ("anytime", &anytime),
        ("focused+pruned", &focused_pruned),
    ] {
        row(&[
            name.to_string(),
            format!("{:.4}", arm.avg_cost),
            format!("{}", arm.probes),
            format!("{}", arm.saved_round_trips),
            format!("{}", arm.deep_probe_round_trips),
            format!("{}", arm.resolves),
            format!("{}", arm.migrations),
        ]);
    }
    let savings = 1.0 - pruned.probes as f64 / uniform.probes as f64;
    let cost_ratio = pruned.avg_cost / uniform.avg_cost.max(f64::MIN_POSITIVE);
    println!(
        "# pruned sweeps save {:.1}% of uniform's round trips at {:+.2}% cost",
        savings * 100.0,
        (cost_ratio - 1.0) * 100.0
    );
    let anytime_extra = 1.0 - anytime.probes as f64 / pruned.probes.max(1) as f64;
    let anytime_cost_ratio = anytime.avg_cost / uniform.avg_cost.max(f64::MIN_POSITIVE);
    let error_bound = 1.0 + (1.0 - confidence);
    println!(
        "# anytime sweeps save a further {:.1}% of pruned's round trips at {:+.2}% cost \
         (bound {:+.2}%)",
        anytime_extra * 100.0,
        (anytime_cost_ratio - 1.0) * 100.0,
        (error_bound - 1.0) * 100.0
    );
    println!(
        "# focused+pruned spends {:.1}% of uniform's budget, {} round trips re-invested deep",
        100.0 * focused_pruned.probes as f64 / uniform.probes as f64,
        focused_pruned.deep_probe_round_trips,
    );

    // Telemetry overhead on the measurement hot path: identical staged
    // sweeps with the plane on vs off (`--no-metrics` equivalent).
    // Asserted only under --smoke; reported always.
    let overhead_ratio = telemetry_overhead_ratio();
    cloudia_obs::set_enabled(args.metrics_enabled);
    println!(
        "# telemetry overhead on staged sweeps: {:+.2}% vs --no-metrics",
        (overhead_ratio - 1.0) * 100.0
    );

    let arm_json = |arm: &cloudia_online::FocusArm| {
        Json::obj()
            .field("avg_cost_ms", arm.avg_cost)
            .field("probe_round_trips", arm.probes)
            .field("saved_round_trips", arm.saved_round_trips)
            .field("deep_probe_round_trips", arm.deep_probe_round_trips)
            .field("resolves", arm.resolves)
            .field("migrations", arm.migrations)
    };
    let payload = Json::obj()
        .field("instances", scenario.instances)
        .field("epochs", scenario.epochs())
        .field("uniform", arm_json(&uniform))
        .field("pruned", arm_json(&pruned))
        .field("anytime", arm_json(&anytime))
        .field("focused_pruned", arm_json(&focused_pruned))
        .field("savings", savings)
        .field("cost_ratio", cost_ratio)
        .field("confidence", confidence)
        .field("anytime_savings_vs_pruned", anytime_extra)
        .field("anytime_cost_ratio", anytime_cost_ratio)
        .field("telemetry_overhead_ratio", overhead_ratio);
    match write_bench_json("ext_sweep", payload.clone()) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_sweep.json: {e}");
            std::process::exit(1);
        }
    }
    if let Some(mut rec) = recorder {
        rec.record("bench", payload);
        rec.record_metrics_snapshot(cloudia_obs::metrics());
        rec.flush_global_spans();
        if let Err(e) = rec.finish() {
            eprintln!("FAIL: trace write failed: {e}");
            std::process::exit(1);
        }
    }

    if smoke {
        let mut failures = Vec::new();
        if savings < 0.30 {
            failures.push(format!(
                "pruning saved only {:.1}% of uniform's round trips (< 30%)",
                savings * 100.0
            ));
        }
        if cost_ratio > 1.02 {
            failures.push(format!(
                "pruned time-averaged cost {:.4} is {:.2}% above uniform's {:.4} (> 2%)",
                pruned.avg_cost,
                (cost_ratio - 1.0) * 100.0,
                uniform.avg_cost
            ));
        }
        if pruned.saved_round_trips == 0 {
            failures.push("the pruned arm never reported mid-sweep savings".to_string());
        }
        if anytime_extra < 0.20 {
            failures.push(format!(
                "anytime sweeps saved only {:.1}% additional round trips over pruned (< 20%)",
                anytime_extra * 100.0
            ));
        }
        if anytime_cost_ratio > error_bound {
            failures.push(format!(
                "anytime time-averaged cost {:.4} is {:.2}% above uniform's {:.4}, outside the \
                 {:.0}% error bound",
                anytime.avg_cost,
                (anytime_cost_ratio - 1.0) * 100.0,
                uniform.avg_cost,
                (error_bound - 1.0) * 100.0
            ));
        }
        if overhead_ratio > 1.03 {
            failures.push(format!(
                "telemetry overhead {:.2}% on staged sweeps exceeds 3%",
                (overhead_ratio - 1.0) * 100.0
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "# smoke OK: >= 30% round trips saved, cost within 2% of full sweeps, anytime \
             saves >= 20% more within its error bound, telemetry overhead within 3%"
        );
    }
}

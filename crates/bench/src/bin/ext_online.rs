//! Extension: online advisor vs batch re-deploy vs never-migrate.
//!
//! Three policies ride the **identical** drift trajectory and measurement
//! randomness (via `ReplayStream` over recorded network snapshots), at
//! equal per-epoch measurement budget:
//!
//! * **never** — deploy once, never move (the paper's §2.2.1 baseline);
//! * **batch** — the paper's re-deployment iteration: every epoch,
//!   re-estimate from that epoch's fresh samples alone and run a **cold
//!   full** solve, migrating under the shared policy economics;
//! * **online** — the `cloudia-online` control loop: EWMA link history,
//!   CUSUM drift triggers, and budgeted incremental re-solves (≤ k nodes
//!   move per round).
//!
//! Reported: time-averaged ground-truth deployment cost (including
//! amortized migration cost), migration counts, and — on the online arm's
//! recorded trigger instances — wall-clock time of the incremental
//! re-solve vs a cold full solve of the same instance.
//!
//! `--smoke` shrinks everything for CI; `CLOUDIA_SCALE=paper` grows it.
//! `--trace PATH` streams the online arm's event history into a JSONL
//! trace; the arm comparison always lands in `BENCH_ext_online.json`.

use std::time::Instant;

use cloudia_bench::{header, row, write_bench_json, ExtArgs};
use cloudia_core::{CommGraph, CostMatrix, Objective, RedeployPolicy, SearchStrategy};
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_netsim::{Cloud, DriftParams, Provider};
use cloudia_obs::Json;
use cloudia_online::{
    incremental_resolve, record_trajectory, DetectorConfig, EpochMeasurement, MeasurementStream,
    OnlineAdvisor, OnlineAdvisorConfig, OnlineEvent, RepairConfig, ReplayStream,
};
use cloudia_solver::{Budget, PortfolioConfig};

struct ArmReport {
    name: &'static str,
    avg_cost: f64,
    migrations: usize,
    nodes_moved: u64,
    migration_paid: f64,
}

fn fresh_costs(m: &EpochMeasurement, n: usize) -> CostMatrix {
    let mut b = CostMatrix::builder(n);
    for d in &m.deltas {
        b.set(d.src as usize, d.dst as usize, d.mean);
    }
    b.freeze().expect("epoch deltas are valid latencies")
}

#[allow(clippy::too_many_arguments)]
fn report(
    name: &'static str,
    total_true: f64,
    epochs: u64,
    migrations: usize,
    nodes_moved: u64,
    paid: f64,
) -> ArmReport {
    ArmReport {
        name,
        avg_cost: (total_true + paid) / epochs as f64,
        migrations,
        nodes_moved,
        migration_paid: paid,
    }
}

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-online", "online advisor vs batch re-deploy vs never-migrate", scale);

    let (rows, cols) = if smoke { (4, 4) } else { scale.pick((4, 4), (7, 7)) };
    let epochs: u64 = if smoke { 30 } else { scale.pick(30, 60) };
    let epoch_hours = 6.0;
    let solve_s: f64 = if smoke { 0.2 } else { scale.pick(1.0, 5.0) };
    let k = 3usize;
    let seed = 42u64;
    let policy = RedeployPolicy { min_gain: 0.02, migration_cost_per_node: 0.05 };

    let graph = CommGraph::mesh_2d(rows, cols);
    let n_nodes = graph.num_nodes();
    let m_instances = n_nodes + n_nodes / 4;

    // Slower-but-larger drift than the stability-figure default: links
    // wander far enough that the hour-0 plan goes stale, but excursions
    // persist for tens of hours, so reacting to them pays off.
    let mut provider = Provider::ec2_like();
    provider.drift = DriftParams { reversion_per_hour: 0.02, sigma_per_sqrt_hour: 0.07 };
    let mut cloud = Cloud::boot(provider, seed);
    let alloc = cloud.allocate(m_instances);
    let net = cloud.network(&alloc);

    println!(
        "# instance: {rows}x{cols} mesh on {m_instances} instances, {epochs} epochs x \
         {epoch_hours} h, k = {k}, repair budget {solve_s}s"
    );

    // Initial plan: one batch pipeline run on the hour-0 network.
    let scheme = || Staged::new(3, 2);
    let measure_cfg = MeasureConfig { seed, ..MeasureConfig::default() };
    let initial_report = scheme().run(&net, &measure_cfg);
    let initial_costs = cloudia_core::LatencyMetric::Mean.cost_matrix(&initial_report.stats);
    let initial_problem = graph.problem(initial_costs);
    let initial = SearchStrategy::Portfolio(PortfolioConfig {
        budget: Budget::seconds(solve_s.max(1.0)),
        threads: 1,
        seed,
        ..PortfolioConfig::default()
    })
    .run(&initial_problem, Objective::LongestLink)
    .deployment;

    // The shared trajectory.
    let snapshots = record_trajectory(net, seed ^ 0xd21f7, epoch_hours, epochs as usize);
    let truth_of = |e: usize, plan: &[u32]| {
        let truth = snapshots[e].mean_matrix();
        graph.problem(truth).cost(Objective::LongestLink, plan)
    };

    // Arm 1: never migrate.
    let never_total: f64 = (0..epochs as usize).map(|e| truth_of(e, &initial)).sum();
    let never = report("never", never_total, epochs, 0, 0, 0.0);

    // Arm 2: batch re-deploy — fresh estimates + cold full solve, every
    // epoch, same measurement and same solve budget as the online arm.
    let mut stream =
        ReplayStream::new(snapshots.clone(), scheme(), measure_cfg.clone(), epoch_hours);
    let mut plan = initial.clone();
    let mut batch_total = 0.0;
    let mut batch_migrations = 0usize;
    let mut batch_moved = 0u64;
    let mut batch_paid = 0.0;
    for e in 0..epochs as usize {
        let m = stream.next_epoch();
        let problem = graph.problem(fresh_costs(&m, m_instances));
        let out = SearchStrategy::Portfolio(PortfolioConfig {
            budget: Budget::seconds(solve_s),
            threads: 1,
            seed: seed ^ e as u64,
            ..PortfolioConfig::default()
        })
        .run(&problem, Objective::LongestLink);
        let keep = problem.cost(Objective::LongestLink, &plan);
        let moved = plan.iter().zip(&out.deployment).filter(|(a, b)| a != b).count();
        let gain = keep - out.cost;
        if moved > 0
            && gain >= policy.min_gain * keep.max(f64::MIN_POSITIVE)
            && gain > policy.migration_cost_per_node * moved as f64
        {
            plan = out.deployment;
            batch_migrations += 1;
            batch_moved += moved as u64;
            batch_paid += policy.migration_cost_per_node * moved as f64;
        }
        batch_total += truth_of(e, &plan);
    }
    let batch = report("batch", batch_total, epochs, batch_migrations, batch_moved, batch_paid);

    // Arm 3: the online advisor.
    let mut stream =
        ReplayStream::new(snapshots.clone(), scheme(), measure_cfg.clone(), epoch_hours);
    let config = OnlineAdvisorConfig {
        objective: Objective::LongestLink,
        policy,
        migration_budget: k,
        solve_seconds: solve_s,
        threads: 1,
        seed,
        record_triggers: true,
        // A faster EWMA than the default: the experiment's drift is
        // stronger than the paper's stability figures, so the baseline
        // must track it or repair decisions go stale.
        ewma_alpha: 0.5,
        detector: DetectorConfig { warmup: 3, threshold: 6.0, ..Default::default() },
        ..Default::default()
    };
    let mut advisor = OnlineAdvisor::new(graph.clone(), m_instances, initial.clone(), config);
    // With `--trace` the online arm streams its event history into the
    // JSONL trace as it runs.
    if let Some(rec) = args.recorder("ext_online") {
        advisor.attach_recorder(rec);
    }
    advisor.run(&mut stream, epochs);
    let recorder = advisor.take_recorder();
    let online_migrations =
        advisor.events().iter().filter(|e| matches!(e, OnlineEvent::Migrate { .. })).count();
    let online = ArmReport {
        name: "online",
        avg_cost: advisor.time_averaged_cost(),
        migrations: online_migrations,
        nodes_moved: advisor.moved_total(),
        migration_paid: advisor.migration_cost_paid(),
    };

    println!("policy\tavg_cost_ms\tmigrations\tnodes_moved\tmigration_paid");
    for arm in [&never, &batch, &online] {
        row(&[
            arm.name.to_string(),
            format!("{:.4}", arm.avg_cost),
            format!("{}", arm.migrations),
            format!("{}", arm.nodes_moved),
            format!("{:.3}", arm.migration_paid),
        ]);
    }
    println!(
        "# online vs never: {:+.1}% | online vs batch: {:+.1}%",
        (online.avg_cost / never.avg_cost - 1.0) * 100.0,
        (online.avg_cost / batch.avg_cost - 1.0) * 100.0,
    );
    if batch.migrations == 0 {
        println!(
            "# note: batch's cold full re-solves move too many nodes to ever clear the \
             migration economics — at this migration price the paper's batch loop degenerates \
             to never-migrate, while k-budgeted repairs still act profitably"
        );
    }

    let arm_json = |arm: &ArmReport| {
        Json::obj()
            .field("avg_cost_ms", arm.avg_cost)
            .field("migrations", arm.migrations)
            .field("nodes_moved", arm.nodes_moved)
            .field("migration_paid", arm.migration_paid)
    };
    let payload = Json::obj()
        .field("instances", m_instances)
        .field("epochs", epochs)
        .field("never", arm_json(&never))
        .field("batch", arm_json(&batch))
        .field("online", arm_json(&online))
        .field("online_vs_never", online.avg_cost / never.avg_cost)
        .field("online_vs_batch", online.avg_cost / batch.avg_cost);
    match write_bench_json("ext_online", payload.clone()) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_online.json: {e}");
            std::process::exit(1);
        }
    }
    if let Some(mut rec) = recorder {
        rec.record("bench", payload);
        rec.record_metrics_snapshot(cloudia_obs::metrics());
        rec.flush_global_spans();
        if let Err(e) = rec.finish() {
            eprintln!("FAIL: trace write failed: {e}");
            std::process::exit(1);
        }
    }

    // Timing: incremental vs cold on the online arm's trigger instances.
    let triggers = advisor.trigger_instances();
    if triggers.is_empty() {
        println!("# no triggers fired on this trajectory (stable enough network)");
        return;
    }
    let mut inc_total = 0.0;
    let mut cold_total = 0.0;
    println!("trigger_epoch\tincremental_s\tcold_s\tspeedup");
    for t in triggers {
        let problem = graph.problem(t.costs.clone());
        let repair_config = RepairConfig {
            migration_budget: k,
            solve_seconds: solve_s,
            threads: 1,
            seed: seed ^ t.epoch,
            ..Default::default()
        };
        let t0 = Instant::now();
        let _ = incremental_resolve(&problem, Objective::LongestLink, &t.incumbent, &repair_config);
        let inc_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = SearchStrategy::Portfolio(PortfolioConfig {
            budget: Budget::seconds(solve_s),
            threads: 1,
            seed: seed ^ t.epoch,
            ..PortfolioConfig::default()
        })
        .run(&problem, Objective::LongestLink);
        let cold_s = t0.elapsed().as_secs_f64();
        inc_total += inc_s;
        cold_total += cold_s;
        row(&[
            format!("{}", t.epoch),
            format!("{inc_s:.3}"),
            format!("{cold_s:.3}"),
            format!("{:.2}x", cold_s / inc_s.max(1e-9)),
        ]);
    }
    println!(
        "# mean incremental {:.3}s vs cold {:.3}s: {:.2}x faster",
        inc_total / triggers.len() as f64,
        cold_total / triggers.len() as f64,
        cold_total / inc_total.max(1e-9),
    );
}

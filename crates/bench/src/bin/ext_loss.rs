//! Extension: loss-aware vs loss-blind advisement on a lossy network.
//!
//! Two online-advisor arms ride the **identical** lossy trajectory
//! (`ReplayStream` over recorded snapshots whose networks carry per-link
//! drop probabilities, plus one forced instance blackout mid-run),
//! differing only in whether they believe in packet loss:
//!
//! * **aware** — retransmit-budgeted sweeps, per-link loss-rate EWMAs,
//!   `LinkDark` triage with spot-check confirmation, instance
//!   evacuation, and loss-priced search costs;
//! * **blind** — zero retries, no dark triage, no loss pricing: the
//!   pre-loss-plane behaviour, judged on the same lossy ground truth.
//!
//! The scenario is [`cloudia_online::scenario::LossScenario`], shared
//! verbatim with the differential test in
//! `crates/online/src/scenario.rs` so the asserted contract cannot fork.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criteria:
//! the blackout raises `LinkDark` (not a latency migration) within two
//! epochs of onset, the aware arm evacuates the dark instance while the
//! blind arm never does, and the aware arm's time-averaged effective
//! cost beats the blind arm's. Exits non-zero otherwise.
//!
//! The machine-readable arm comparison always lands in
//! `BENCH_ext_loss.json`.

use cloudia_bench::{header, row, write_bench_json, ExtArgs};
use cloudia_obs::Json;
use cloudia_online::LossScenario;

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-loss", "loss-aware vs loss-blind advisement", scale);

    let mut scenario = LossScenario::default();
    if !smoke {
        scenario.mesh = scale.pick((3, 4), (5, 6));
        scenario.instances = scale.pick(24, 48);
        scenario.epochs = scale.pick(24, 40);
        scenario.blackout_epoch = scenario.epochs / 2;
        scenario.solve_seconds = scale.pick(0.5, 2.0);
    }
    println!(
        "# instance: {}x{} mesh on {} instances, {} epochs x {} h, {:.0}% drifting loss, \
         blackout at epoch {}, {} retries/pair",
        scenario.mesh.0,
        scenario.mesh.1,
        scenario.instances,
        scenario.epochs,
        scenario.epoch_hours,
        scenario.base_loss * 100.0,
        scenario.blackout_epoch,
        scenario.retries_per_pair,
    );

    let built = scenario.build();
    let aware = built.run_arm(true);
    let blind = built.run_arm(false);

    println!(
        "arm\tavg_cost_ms\tprobe_round_trips\tmigrations\tlink_dark\tevacuations\tends_on_dark"
    );
    for (name, arm) in [("aware", &aware), ("blind", &blind)] {
        row(&[
            name.to_string(),
            format!("{:.4}", arm.avg_cost),
            format!("{}", arm.probes),
            format!("{}", arm.migrations),
            format!("{}", arm.link_dark_events),
            format!("{}", arm.evacuations),
            format!("{}", arm.final_plan_on_dark),
        ]);
    }
    let cost_ratio = aware.avg_cost / blind.avg_cost.max(f64::MIN_POSITIVE);
    println!(
        "# aware runs at {:.1}% of blind's effective cost; dark detected at epoch {:?} \
         (blackout at {})",
        cost_ratio * 100.0,
        aware.first_dark_epoch,
        scenario.blackout_epoch,
    );

    let arm_json = |arm: &cloudia_online::LossArm| {
        Json::obj()
            .field("avg_cost_ms", arm.avg_cost)
            .field("probe_round_trips", arm.probes)
            .field("migrations", arm.migrations)
            .field("link_dark_events", arm.link_dark_events)
            .field("evacuations", arm.evacuations)
            .field("final_plan_on_dark", arm.final_plan_on_dark)
            .field("first_dark_epoch", arm.first_dark_epoch.map_or(Json::Null, Json::from))
    };
    let payload = Json::obj()
        .field("instances", scenario.instances)
        .field("epochs", scenario.epochs)
        .field("blackout_epoch", scenario.blackout_epoch)
        .field("aware", arm_json(&aware))
        .field("blind", arm_json(&blind))
        .field("cost_ratio", cost_ratio);
    match write_bench_json("ext_loss", payload) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_loss.json: {e}");
            std::process::exit(1);
        }
    }

    if smoke {
        let mut failures = Vec::new();
        match aware.first_dark_epoch {
            None => failures.push("the blackout never raised a LinkDark event".to_string()),
            Some(e) if e > scenario.blackout_epoch + 2 => failures.push(format!(
                "LinkDark raised at epoch {e}, more than 2 epochs after the blackout at {}",
                scenario.blackout_epoch
            )),
            Some(_) => {}
        }
        if aware.evacuations == 0 {
            failures.push("the aware arm never evacuated the dark instance".to_string());
        }
        if aware.final_plan_on_dark {
            failures
                .push("the aware arm's final plan still occupies the dark instance".to_string());
        }
        if blind.link_dark_events != 0 || blind.evacuations != 0 {
            failures.push(format!(
                "the blind arm triaged darkness it should not see ({} LinkDark, {} evacuations)",
                blind.link_dark_events, blind.evacuations
            ));
        }
        if aware.avg_cost >= blind.avg_cost {
            failures.push(format!(
                "loss awareness did not pay: aware {:.4} >= blind {:.4}",
                aware.avg_cost, blind.avg_cost
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "# smoke OK: blackout triaged as LinkDark within 2 epochs, dark instance evacuated, \
             aware cost beats blind"
        );
    }
}

//! Figure 10: correlation between cost metrics under one representative
//! allocation of 110 instances — per-link mean vs mean+SD and mean vs p99.
//!
//! Paper shape: larger means tend to have larger mean+SD / p99, but the
//! metrics are *not* perfectly correlated.

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_measure::error::pearson;
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig10", "Figure 10", "correlation between latency metrics, 110 instances", scale);
    let n = scale.pick(60, 110);
    let sweeps = scale.pick(20, 60);
    let net = standard_network(Provider::ec2_like(), n, 42);
    let report = Staged::new(10, sweeps).run(&net, &MeasureConfig::default());

    let mut mean = Vec::new();
    let mut mean_sd = Vec::new();
    let mut p99 = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let l = report.stats.link(i, j);
            mean.push(l.mean());
            mean_sd.push(l.mean_plus_sd());
            p99.push(l.p99());
        }
    }

    println!("# scatter sample (every 50th link): mean vs mean+SD vs p99 [ms]");
    println!("mean\tmean_plus_sd\tp99");
    for k in (0..mean.len()).step_by(50) {
        fig.row(&[
            format!("{:.3}", mean[k]),
            format!("{:.3}", mean_sd[k]),
            format!("{:.3}", p99[k]),
        ]);
    }

    println!();
    println!("# Pearson correlation with mean (paper: positive but imperfect)");
    fig.row(&["mean+SD".into(), format!("{:.3}", pearson(&mean, &mean_sd))]);
    fig.row(&["p99".into(), format!("{:.3}", pearson(&mean, &p99))]);

    fig.finish();
}

//! Figure 16: links ordered by latency within IP-distance groups
//! (Appendix 2 negative result: IP distance does not predict latency).

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_measure::approx::{inversion_rate, links_by_ip_distance};
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig16", "Figure 16", "latency ordered by IP distance (g = 8)", scale);
    let net = standard_network(Provider::ec2_like(), 100, 42);
    let links = links_by_ip_distance(&net, 8);

    // Per-group summaries show the overlap the paper highlights.
    println!("group\tcount\tmin_ms\tmedian_ms\tmax_ms");
    let groups: std::collections::BTreeSet<u32> = links.iter().map(|l| l.group).collect();
    for g in &groups {
        let vals: Vec<f64> = links.iter().filter(|l| l.group == *g).map(|l| l.mean_rtt).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fig.row(&[
            format!("ip-distance {g}"),
            format!("{}", vals.len()),
            format!("{:.3}", sorted[0]),
            format!("{:.3}", sorted[sorted.len() / 2]),
            format!("{:.3}", sorted[sorted.len() - 1]),
        ]);
    }

    println!();
    println!("# link#, sorted by (group, latency) — sample every 100th link");
    println!("link\tgroup\tmean_ms");
    for (i, l) in links.iter().enumerate() {
        if i % 100 == 0 {
            fig.row(&[format!("{i}"), format!("{}", l.group), format!("{:.3}", l.mean_rtt)]);
        }
    }

    println!();
    println!(
        "# inversion rate (0 = perfect predictor, 0.5 = useless): {:.3}",
        inversion_rate(&links)
    );
    println!("# paper conclusion: monotonicity does not hold -> IP distance is a poor proxy");

    fig.finish();
}

//! Figure 6: convergence of the CP solver on LLNDP with different numbers
//! of cost clusters (k = 5, k = 20, no clustering).
//!
//! Paper shape: k = 20 converges fastest; k = 5 converges quickly but to a
//! worse cost (clusters too coarse to discriminate); no clustering reaches
//! the same quality as k = 20 but takes much longer.

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{solve_llndp_cp, Budget, CpConfig};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig06", "Figure 6", "CP convergence on LLNDP by cost clusters (2D mesh)", scale);
    // 90 % of instances carry application nodes (paper §6.3.1).
    let (rows, cols, m) = scale.pick((6, 6, 40), (9, 10, 100));
    let budget_s = scale.pick(10.0, 120.0);
    let net = standard_network(Provider::ec2_like(), m, 42);
    let graph = CommGraph::mesh_2d(rows, cols);
    let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, 0);
    let problem = graph.problem(costs);

    println!("# mesh {rows}x{cols} on {m} instances, budget {budget_s}s per config");
    println!("config\telapsed_s\tlongest_link_ms");
    for (label, clusters) in [("k=5", Some(5)), ("k=20", Some(20)), ("no-clustering", None)] {
        let out = solve_llndp_cp(
            &problem,
            &CpConfig {
                budget: Budget::seconds(budget_s),
                clusters,
                seed: 1,
                ..CpConfig::default()
            },
        );
        for &(t, c) in &out.curve {
            fig.row(&[label.into(), format!("{t:.2}"), format!("{c:.3}")]);
        }
        fig.row(&[
            label.into(),
            "final".into(),
            format!(
                "{:.3} (optimal_proven={}, nodes={})",
                out.cost, out.proven_optimal, out.explored
            ),
        ]);
    }

    fig.finish();
}

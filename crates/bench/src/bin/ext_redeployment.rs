//! Extension experiment (paper §2.2.1): iterative re-deployment under
//! drifting network conditions.
//!
//! The paper's architecture assumes stable means (Fig. 2) but sketches
//! re-deployment via iterations of measure -> search -> redeploy for more
//! dynamic infrastructures. This experiment drifts the network for several
//! simulated days and compares the longest-link cost of (a) keeping the
//! day-0 plan, against (b) re-running ClouDiA at each epoch with a
//! migration-aware policy.

use cloudia_bench::{header, row, Scale};
use cloudia_core::{redeploy, Advisor, AdvisorConfig, CommGraph, Objective, RedeployPolicy};
use cloudia_netsim::{Cloud, Provider};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    header("Extension", "iterative re-deployment under mean-latency drift", scale);
    let graph = CommGraph::mesh_2d(scale.pick(5, 8), scale.pick(5, 8));
    let n = graph.num_nodes();

    let mut cloud = Cloud::boot(Provider::ec2_like(), 77);
    let alloc = cloud.allocate(n + n / 10);
    let mut net = cloud.network(&alloc);
    let mut rng = StdRng::seed_from_u64(5);

    let advisor = Advisor::new(AdvisorConfig {
        objective: Objective::LongestLink,
        search_time_s: scale.pick(4.0, 30.0),
        ..AdvisorConfig::fast()
    });
    let policy = RedeployPolicy { min_gain: 0.05, migration_cost_per_node: 0.0 };

    let initial = advisor.run_on_network(&net, &graph, 1);
    let static_plan = initial.deployment.clone();
    let mut adaptive_plan = initial.deployment.clone();

    println!("epoch_h\tstatic_cost_ms\tadaptive_cost_ms\tmigrated\tmoved_nodes");
    let epochs = scale.pick(6, 12);
    let epoch_hours = 24.0;
    for e in 0..=epochs {
        let truth = net.mean_matrix();
        let problem = graph.problem(truth);
        let static_cost = problem.longest_link(&static_plan);

        let (migrated, moved) = if e > 0 {
            let decision = redeploy(&advisor, &net, &graph, &adaptive_plan, policy, 100 + e as u64);
            let migrated = decision.migrate;
            let moved = decision.moved_nodes;
            if migrated {
                adaptive_plan = decision.outcome.deployment;
            }
            (migrated, moved)
        } else {
            (false, 0)
        };
        let adaptive_cost = problem.longest_link(&adaptive_plan);
        row(&[
            format!("{:.0}", e as f64 * epoch_hours),
            format!("{static_cost:.3}"),
            format!("{adaptive_cost:.3}"),
            format!("{migrated}"),
            format!("{moved}"),
        ]);

        net = net.drifted(epoch_hours, &mut rng);
    }
    println!();
    println!("# re-deployment holds the cost near the per-epoch optimum as links drift");
}

//! Extension experiment (paper §1, footnote 1): cluster placement groups
//! vs ClouDiA.
//!
//! EC2's cluster placement groups are the one provider mechanism exposing
//! locality — but they cost much more and are size-limited. This
//! experiment compares, for the behavioral-simulation workload:
//!   1. default deployment on ordinary instances,
//!   2. ClouDiA on ordinary instances (10 % over-allocation),
//!   3. a contiguous placement group (when one fits).
//!
//! Expected: the placement group wins on raw latency (all links intra-pod)
//! at a steep price premium; ClouDiA recovers most of the gap for the cost
//! of a 10 % one-hour over-allocation.

use cloudia_bench::{header, row, Scale};
use cloudia_core::{Advisor, AdvisorConfig, Objective};
use cloudia_netsim::{Cloud, Provider};
use cloudia_workloads::{BehavioralSim, Workload};

fn main() {
    let scale = Scale::from_env();
    header("Extension", "cluster placement group vs ClouDiA (behavioral sim)", scale);
    let (rows, cols) = scale.pick((6, 6), (8, 8));
    let n = rows * cols;
    let sim =
        BehavioralSim { sample_ticks: scale.pick(400, 1000), ..BehavioralSim::new(rows, cols) };
    // Paper footnote: cluster instances are "much more costly"; EC2's
    // cc1.4xlarge vs m1.large was roughly a 4x per-hour premium.
    let price_premium = 4.0;

    println!("option\ttime_to_solution_s\trelative_cost");
    let mut results = Vec::new();
    for seed in [11u64, 22, 33] {
        let mut cloud = Cloud::boot(Provider::ec2_like(), seed);

        // Ordinary scattered allocation with 10 % extra.
        let ordinary = cloud.allocate(n + n / 10);
        let net = cloud.network(&ordinary);
        let default: Vec<u32> = (0..n as u32).collect();
        let t_default = sim.run(&net, &default, seed).value_ms / 1000.0;

        let advisor = Advisor::new(AdvisorConfig {
            objective: Objective::LongestLink,
            search_time_s: scale.pick(6.0, 60.0),
            ..AdvisorConfig::fast()
        });
        let outcome = advisor.run_on_network(&net, &sim.graph(), seed);
        let t_cloudia = sim.run(&net, &outcome.deployment, seed).value_ms / 1000.0;

        // Placement group (same region, fresh slots).
        let t_group = cloud.allocate_placement_group(n).map(|group| {
            let gnet = cloud.network(&group);
            sim.run(&gnet, &default, seed).value_ms / 1000.0
        });

        results.push((t_default, t_cloudia, t_group));
    }

    type Row = (f64, f64, Option<f64>);
    let avg = |f: &dyn Fn(&Row) -> Option<f64>| {
        let vals: Vec<f64> = results.iter().filter_map(f).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let t_def = avg(&|r| Some(r.0));
    let t_cla = avg(&|r| Some(r.1));
    let t_grp = avg(&|r| r.2);
    row(&["default (ordinary)".into(), format!("{t_def:.1}"), "1.0x".into()]);
    row(&[
        "cloudia (ordinary, 10% over-alloc)".into(),
        format!("{t_cla:.1}"),
        // One hour of 10 % extra instances, amortized over a long run.
        "~1.0x".into(),
    ]);
    row(&["placement group".into(), format!("{t_grp:.1}"), format!("{price_premium:.1}x")]);

    println!();
    println!(
        "# ClouDiA recovers {:.0} % of the placement group's advantage at ~1/{}th the price",
        (t_def - t_cla) / (t_def - t_grp).max(1e-9) * 100.0,
        price_premium
    );
}

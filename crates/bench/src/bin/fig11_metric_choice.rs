//! Figure 11: relative application performance of deployments optimized
//! under Mean+SD or p99, compared against deployments optimized under
//! mean latency, for all three workloads.
//!
//! Paper shape: p99 *reduces* performance for all three applications;
//! Mean+SD helps slightly for the behavioral simulation and aggregation
//! query but hurts the key-value store; all differences are modest — mean
//! latency is a robust metric.

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric, Objective, SearchStrategy};
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_netsim::{Network, Provider};
use cloudia_workloads::{AggregationQuery, BehavioralSim, KvStore, Workload};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig11", "Figure 11", "relative improvement of Mean+SD and p99 vs Mean", scale);
    let search_s = scale.pick(3.0, 60.0);
    let sweeps = scale.pick(20, 60);

    let workloads: Vec<(Box<dyn Workload>, Objective, usize)> = match scale {
        Scale::Quick => vec![
            (
                Box::new(BehavioralSim { sample_ticks: 400, ..BehavioralSim::new(6, 6) }),
                Objective::LongestLink,
                40,
            ),
            (Box::new(AggregationQuery::new(6, 2)), Objective::LongestPath, 48),
            (Box::new(KvStore::new(8, 28)), Objective::LongestLink, 40),
        ],
        Scale::Paper => vec![
            (
                Box::new(BehavioralSim { sample_ticks: 1000, ..BehavioralSim::new(10, 10) }),
                Objective::LongestLink,
                110,
            ),
            (Box::new(AggregationQuery::new(7, 2)), Objective::LongestPath, 63),
            (Box::new(KvStore::new(20, 80)), Objective::LongestLink, 110),
        ],
    };

    println!("workload\tmetric\tvalue_ms\trel_improvement_vs_mean_%");
    for (w, objective, m) in workloads {
        let net: Network = standard_network(Provider::ec2_like(), m, 77);
        let report = Staged::new(10, sweeps).run(&net, &MeasureConfig::default());
        let graph: CommGraph = w.graph();

        let mut mean_value = None;
        for metric in LatencyMetric::all() {
            let costs = metric.cost_matrix(&report.stats);
            let problem = graph.problem(costs);
            let strategy = SearchStrategy::recommended(objective, search_s);
            let out = strategy.run(&problem, objective);
            let perf = w.run(&net, &out.deployment, 5).value_ms;
            let rel = match mean_value {
                None => {
                    mean_value = Some(perf);
                    0.0
                }
                Some(base) => (base - perf) / base * 100.0,
            };
            fig.row(&[
                w.name().into(),
                metric.name().into(),
                format!("{perf:.1}"),
                format!("{rel:+.1}"),
            ]);
        }
    }
    println!();
    println!(
        "# paper: p99 hurts all three; Mean+SD mildly helps sim/agg, hurts kv; mean is robust"
    );

    fig.finish();
}

//! Ablation study of the CP solver's design choices (DESIGN.md §5):
//! degree-compatibility domain filtering and cost clustering, crossed.
//!
//! Not a paper figure — this quantifies which parts of our CP
//! implementation carry the weight, the way the paper's §6.3 motivates
//! clustering. Expected: clustering dominates wall-clock convergence;
//! degree filtering trims search nodes, most visibly without clustering.

use cloudia_bench::{header, measured_costs, row, standard_network, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{solve_llndp_cp, Budget, CpConfig};

fn main() {
    let scale = Scale::from_env();
    header("Ablation", "CP design choices: degree filter x clustering", scale);
    let (rows, cols, m) = scale.pick((6, 6, 40), (9, 10, 100));
    let budget_s = scale.pick(8.0, 60.0);
    let repeats = scale.pick(3, 10);

    println!("# mesh {rows}x{cols} on {m} instances, {budget_s}s budget, {repeats} seeds");
    println!("config\tavg_cost_ms\tavg_nodes\tavg_converge_s\toptimal_proven");
    for (label, clusters, degree_filter) in [
        ("k20+degree", Some(20), true),
        ("k20-no-degree", Some(20), false),
        ("raw+degree", None, true),
        ("raw-no-degree", None, false),
    ] {
        let mut cost = 0.0;
        let mut nodes = 0u64;
        let mut conv = 0.0;
        let mut proven = 0usize;
        for s in 0..repeats {
            let net = standard_network(Provider::ec2_like(), m, 500 + s as u64);
            let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, s as u64);
            let problem = CommGraph::mesh_2d(rows, cols).problem(costs);
            let out = solve_llndp_cp(
                &problem,
                &CpConfig {
                    budget: Budget::seconds(budget_s),
                    clusters,
                    degree_filter,
                    seed: s as u64,
                    ..CpConfig::default()
                },
            );
            cost += out.cost;
            nodes += out.explored;
            conv += out.curve.last().map(|&(t, _)| t).unwrap_or(0.0);
            proven += out.proven_optimal as usize;
        }
        let r = repeats as f64;
        row(&[
            label.into(),
            format!("{:.3}", cost / r),
            format!("{}", nodes / repeats as u64),
            format!("{:.2}", conv / r),
            format!("{proven}/{repeats}"),
        ]);
    }
}

//! Figure 21: mean latency stability of four Rackspace-like links over
//! 60 h (1 h buckets; paper Appendix 3).

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_netsim::{InstanceId, Provider};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig21", "Figure 21", "mean latency stability over 60 h, Rackspace-like", scale);
    let net = standard_network(Provider::rackspace_like(), 50, 42);
    let mut rng = StdRng::seed_from_u64(7);

    let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..net.len() as u32 {
        for j in 0..net.len() as u32 {
            if i != j {
                pairs.push((i, j, net.mean_rtt(InstanceId(i), InstanceId(j))));
            }
        }
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let picks = [
        pairs[pairs.len() / 10],
        pairs[pairs.len() * 4 / 10],
        pairs[pairs.len() * 7 / 10],
        pairs[pairs.len() * 95 / 100],
    ];

    let buckets = 60;
    let traces: Vec<_> = picks
        .iter()
        .map(|&(a, b, _)| {
            net.link_trace(InstanceId(a), InstanceId(b), 1.0, buckets, 2000, &mut rng)
        })
        .collect();

    fig.row(&["hours".into(), "link1".into(), "link2".into(), "link3".into(), "link4".into()]);
    for t in 0..buckets {
        let mut cells = vec![format!("{:.0}", traces[0].hours[t])];
        for trace in &traces {
            cells.push(format!("{:.3}", trace.mean_rtt[t]));
        }
        fig.row(&cells);
    }

    fig.finish();
}

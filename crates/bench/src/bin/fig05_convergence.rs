//! Figure 5: convergence of the staged measurement over time — RMSE of
//! partial mean estimates against the final estimate (Ks = 10).
//!
//! Paper shape: RMSE drops quickly within the first ~5 minutes and
//! smooths out afterwards (100 instances over 30 min in the paper; the
//! quick scale uses a smaller fleet and horizon, same shape).

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_measure::error::rmse;
use cloudia_measure::{MeasureConfig, Scheme, Staged};
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new(
        "fig05",
        "Figure 5",
        "staged measurement convergence (RMSE vs final estimate)",
        scale,
    );
    let n = scale.pick(40, 100);
    let horizon_min = scale.pick(8.0, 30.0);
    let net = standard_network(Provider::ec2_like(), n, 42);

    let snapshot_every_ms = 30_000.0; // every simulated half-minute
    let cfg = MeasureConfig {
        snapshot_every_ms: Some(snapshot_every_ms),
        max_duration_ms: Some(horizon_min * 60_000.0),
        ..MeasureConfig::default()
    };
    // Enough sweeps to fill the horizon; the duration limit cuts it off.
    let report = Staged::new(10, 1_000_000).run(&net, &cfg);
    let ground_truth = report.mean_vector();

    println!("# instances: {n}, horizon: {horizon_min} min, Ks = 10");
    fig.row(&["minutes".into(), "rmse".into()]);
    for snap in &report.snapshots {
        // Skip snapshots with unmeasured links (mean 0 would skew RMSE).
        if snap.mean_vector.contains(&0.0) {
            continue;
        }
        fig.row(&[
            format!("{:.1}", snap.at_ms / 60_000.0),
            format!("{:.4}", rmse(&snap.mean_vector, &ground_truth)),
        ]);
    }
    println!();
    println!(
        "# total round trips: {} over {:.1} simulated minutes",
        report.round_trips,
        report.elapsed_ms / 60_000.0
    );

    fig.finish();
}

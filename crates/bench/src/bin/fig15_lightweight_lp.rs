//! Figure 15: lightweight approaches vs MIP on LPNDP — average
//! longest-path latency of G1, G2 (longest-link greedy reused as a
//! heuristic), R1, R2, and MIP.
//!
//! Paper shape: G1/G2 comparable to R1; R2 *beats* MIP by ~5 % on average
//! (random search explores more of this solution space per second than
//! the weak MIP relaxation).

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric, SearchStrategy};
use cloudia_netsim::Provider;
use cloudia_solver::{
    solve_lpndp_mip, solve_random_budget, solve_random_count, Budget, GreedyVariant, MipConfig,
    Objective,
};

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig15", "Figure 15", "lightweight approaches vs MIP on LPNDP", scale);
    let allocations = scale.pick(8, 20);
    let budget_s = scale.pick(3.0, 900.0);
    let m = scale.pick(24, 50);
    let (fanout, levels) = scale.pick((4, 2), (6, 2));
    let graph = CommGraph::aggregation_tree(fanout, levels);

    let mut totals = [0.0f64; 5]; // g1, g2, r1, r2, mip
    for a in 0..allocations {
        let net = standard_network(Provider::ec2_like(), m, 200 + a as u64);
        let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, a as u64);
        let problem = graph.problem(costs);

        totals[0] +=
            SearchStrategy::Greedy(GreedyVariant::G1).run(&problem, Objective::LongestPath).cost;
        totals[1] +=
            SearchStrategy::Greedy(GreedyVariant::G2).run(&problem, Objective::LongestPath).cost;
        totals[2] += solve_random_count(&problem, Objective::LongestPath, 1000, a as u64).cost;
        totals[3] += solve_random_budget(
            &problem,
            Objective::LongestPath,
            Budget::seconds(budget_s),
            0,
            a as u64,
        )
        .cost;
        totals[4] += solve_lpndp_mip(
            &problem,
            &MipConfig {
                budget: Budget::seconds(budget_s),
                seed: a as u64,
                ..MipConfig::default()
            },
        )
        .cost;
    }

    println!(
        "# {allocations} allocations of {m} instances, {}-node tree, {budget_s}s for R2/MIP",
        graph.num_nodes()
    );
    println!("method\tavg_longest_path_ms\tvs_mip");
    let mip = totals[4] / allocations as f64;
    for (name, total) in [
        ("G1", totals[0]),
        ("G2", totals[1]),
        ("R1", totals[2]),
        ("R2", totals[3]),
        ("MIP", totals[4]),
    ] {
        let avg = total / allocations as f64;
        fig.row(&[
            name.into(),
            format!("{avg:.3}"),
            format!("{:+.1} %", (avg / mip - 1.0) * 100.0),
        ]);
    }
    println!();
    println!("# paper: R2 ~5.1 % below MIP; G1/G2 comparable to R1");

    fig.finish();
}

//! Extension: parallel portfolio scalability on the Fig. 8 instance.
//!
//! Two questions, answered on the same fig08-style setup (EC2-like
//! network, mesh graph over ~90 % of the measured instances):
//!
//! 1. **Trail speedup** — nodes/second of the trail-based CP propagation
//!    vs the original copy-domains-per-node backend, under an identical
//!    node budget (identical search trees, so the ratio is pure
//!    representation overhead).
//! 2. **Portfolio time-to-quality** — wall-clock time for the portfolio
//!    at 1/2/4 threads to reach the final cost of a single-threaded CP
//!    run, plus the cost each configuration ends at.

use std::time::Instant;

use cloudia_bench::{header, measured_costs, row, standard_network, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{
    solve_llndp_cp, solve_portfolio, Budget, CpConfig, Objective, PortfolioConfig, Propagation,
};

fn mesh_dims(nodes: usize) -> (usize, usize) {
    let r = (nodes as f64).sqrt() as usize;
    for rows in (1..=r).rev() {
        if nodes.is_multiple_of(rows) {
            return (rows, nodes / rows);
        }
    }
    (1, nodes)
}

fn main() {
    let scale = Scale::from_env();
    header("ext-portfolio", "portfolio scalability + trail-based CP speedup", scale);
    let m = scale.pick(40, 100);
    let budget_s = scale.pick(5.0, 60.0);
    let node_budget = scale.pick(200_000u64, 2_000_000u64);

    let net = standard_network(Provider::ec2_like(), m, 42);
    let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, 0);
    let nodes = (m as f64 * 0.9) as usize;
    let (rows, cols) = mesh_dims(nodes);
    let graph = CommGraph::mesh_2d(rows, cols);
    let problem = graph.problem(costs);
    println!("# instance: {m} instances, {rows}x{cols} mesh, per-run budget {budget_s}s");

    // Part 1: trail vs clone propagation at a fixed node budget.
    println!("backend\tnodes\tseconds\tnodes_per_sec");
    let mut rates = [0.0f64; 2];
    for (i, (name, propagation)) in
        [("trail", Propagation::Trail), ("clone", Propagation::CloneDomains)].iter().enumerate()
    {
        let config = CpConfig {
            budget: Budget::nodes(node_budget),
            clusters: Some(20),
            propagation: *propagation,
            ..CpConfig::default()
        };
        let t0 = Instant::now();
        let out = solve_llndp_cp(&problem, &config);
        let secs = t0.elapsed().as_secs_f64();
        rates[i] = out.explored as f64 / secs.max(1e-9);
        row(&[
            name.to_string(),
            format!("{}", out.explored),
            format!("{secs:.3}"),
            format!("{:.0}", rates[i]),
        ]);
    }
    println!("# trail speedup: {:.2}x nodes/sec over clone-domains", rates[0] / rates[1].max(1e-9));

    // Part 2: single-threaded CP as the baseline for time-to-quality.
    let cp_config =
        CpConfig { budget: Budget::seconds(budget_s), clusters: Some(20), ..CpConfig::default() };
    let t0 = Instant::now();
    let cp = solve_llndp_cp(&problem, &cp_config);
    let cp_secs = t0.elapsed().as_secs_f64();
    let target = cp.cost;
    let cp_reach = cp.curve.last().map(|&(t, _)| t).unwrap_or(0.0);
    println!("# single-thread CP: final cost {target:.4} ms (last improvement at {cp_reach:.2}s, total {cp_secs:.2}s)");

    println!("solver\tthreads\tfinal_cost_ms\ttime_to_cp_cost_s\ttotal_s\texplored");
    row(&[
        "cp".into(),
        "1".into(),
        format!("{target:.4}"),
        format!("{cp_reach:.3}"),
        format!("{cp_secs:.2}"),
        format!("{}", cp.explored),
    ]);
    for threads in [1usize, 2, 4] {
        let config = PortfolioConfig {
            budget: Budget::seconds(budget_s),
            threads,
            cp: CpConfig { clusters: Some(20), ..CpConfig::default() },
            ..PortfolioConfig::default()
        };
        let t0 = Instant::now();
        let out = solve_portfolio(&problem, Objective::LongestLink, &config);
        let secs = t0.elapsed().as_secs_f64();
        // Earliest time the merged curve is at least as good as CP's final.
        let reach = out
            .curve
            .iter()
            .find(|&&(_, c)| c <= target + 1e-9)
            .map(|&(t, _)| format!("{t:.3}"))
            .unwrap_or_else(|| "never".into());
        row(&[
            "portfolio".into(),
            format!("{threads}"),
            format!("{:.4}", out.cost),
            reach,
            format!("{secs:.2}"),
            format!("{}", out.explored),
        ]);
    }
}

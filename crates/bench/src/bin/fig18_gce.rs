//! Figure 18: CDF of mean pairwise latencies among 50 GCE-like instances
//! (paper Appendix 3).
//!
//! Paper shape: ~5 % of pairs below 0.32 ms, top 5 % above 0.5 ms —
//! narrower than EC2 but still heterogeneous.

use cloudia_bench::{standard_network, true_mean_vector, Fig, Scale};
use cloudia_measure::error::quantile;
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig18", "Figure 18", "latency heterogeneity in GCE-like region", scale);
    let net = standard_network(Provider::gce_like(), 50, 42);
    let means = true_mean_vector(&net);
    fig.cdf("gce", &means, 40);

    println!();
    println!("# summary (paper: p5 < 0.32 ms, p95 > 0.5 ms)");
    for q in [0.05, 0.50, 0.95] {
        fig.row(&[format!("p{:.0}", q * 100.0), format!("{:.3} ms", quantile(&means, q))]);
    }

    fig.finish();
}

//! Extension: trigger-driven focused measurement vs uniform sweeps.
//!
//! Two online-advisor arms ride the **identical** drift trajectory and
//! probe randomness (`ReplayStream` over recorded snapshots), differing
//! only in probe policy:
//!
//! * **uniform** — the stream's full staged tournament sweep every epoch
//!   (O(m²) probe pairs, the PR 2 behaviour);
//! * **focused** — `ProbePolicy::Focused`: probe the candidate-pool
//!   clique, the detector-flagged links, and whatever went stale, falling
//!   back to a full sweep on escalation or staleness (O(K² + flagged)).
//!
//! The scenario — an active drift head followed by a quiet tail, both
//! arms under the same adaptive candidate pool — is
//! [`cloudia_online::scenario::FocusScenario`], shared verbatim with the
//! differential tests in `crates/online/tests/focused.rs` and
//! `tests/focused.rs` so the asserted contract cannot fork.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criteria:
//! focused probing spends ≤ 25 % of uniform's probe round trips, its
//! time-averaged ground-truth cost stays within 2 % of uniform's, and the
//! focused arm's adaptive `k` ends the quiet tail below its peak. Exits
//! non-zero otherwise.
//!
//! `--trace PATH` streams the focused arm's full event history into a
//! schema-versioned JSONL trace; the machine-readable arm comparison
//! always lands in `BENCH_ext_focus.json`.

use cloudia_bench::{header, row, write_bench_json, ExtArgs};
use cloudia_obs::Json;
use cloudia_online::{ArmOptions, FocusScenario, ProbePolicy};

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-focus", "focused (trigger-driven) vs uniform probing", scale);

    let mut scenario = FocusScenario::default();
    if !smoke {
        scenario.mesh = scale.pick((3, 4), (5, 6));
        scenario.instances = scale.pick(56, 120);
        scenario.head_epochs = scale.pick(16, 32);
        scenario.tail_epochs = scale.pick(16, 32);
        scenario.solve_seconds = scale.pick(0.5, 2.0);
    }
    println!(
        "# instance: {}x{} mesh on {} instances, {} active + {} quiet epochs x {} h, repair \
         budget {}s",
        scenario.mesh.0,
        scenario.mesh.1,
        scenario.instances,
        scenario.head_epochs,
        scenario.tail_epochs,
        scenario.epoch_hours,
        scenario.solve_seconds,
    );

    let built = scenario.build();
    let uniform = built.run_arm(ProbePolicy::Uniform);
    // With `--trace` the focused arm streams its event history into the
    // JSONL trace as it runs.
    let focused_opts = ArmOptions {
        probe_policy: scenario.focused_policy(),
        prune_during_sweep: false,
        spot_check_probes: 0,
        confidence: None,
        anytime: false,
    };
    let (focused, recorder) = match args.recorder("ext_focus") {
        Some(rec) => {
            let (arm, rec) = built.run_arm_traced(focused_opts, rec);
            (arm, Some(rec))
        }
        None => (built.run_arm_with(focused_opts), None),
    };

    println!("policy\tavg_cost_ms\tprobe_round_trips\tresolves\tmigrations");
    for (name, arm) in [("uniform", &uniform), ("focused", &focused)] {
        row(&[
            name.to_string(),
            format!("{:.4}", arm.avg_cost),
            format!("{}", arm.probes),
            format!("{}", arm.resolves),
            format!("{}", arm.migrations),
        ]);
    }
    let probe_ratio = focused.probes as f64 / uniform.probes as f64;
    let cost_ratio = focused.avg_cost / uniform.avg_cost.max(f64::MIN_POSITIVE);
    println!(
        "# focused spends {:.1}% of uniform's probes at {:+.2}% cost",
        probe_ratio * 100.0,
        (cost_ratio - 1.0) * 100.0
    );

    // The focused arm's adaptive pool over time: held up by the active
    // head's escalations, shrinking on the quiet tail.
    println!("epoch\tphase\tfocused_k");
    for &(e, k) in &focused.k_trace {
        row(&[
            format!("{e}"),
            if e < scenario.head_epochs { "active" } else { "quiet" }.to_string(),
            format!("{k}"),
        ]);
    }
    let peak_k = focused.k_trace.iter().map(|&(_, k)| k).max().unwrap_or(0);
    let final_k = focused.k_trace.last().map(|&(_, k)| k).unwrap_or(0);
    println!("# adaptive k: peak {peak_k} -> final {final_k} after the quiet tail");

    let arm_json = |arm: &cloudia_online::FocusArm| {
        Json::obj()
            .field("avg_cost_ms", arm.avg_cost)
            .field("probe_round_trips", arm.probes)
            .field("resolves", arm.resolves)
            .field("migrations", arm.migrations)
    };
    let payload = Json::obj()
        .field("instances", scenario.instances)
        .field("epochs", scenario.epochs())
        .field("uniform", arm_json(&uniform))
        .field("focused", arm_json(&focused))
        .field("probe_ratio", probe_ratio)
        .field("cost_ratio", cost_ratio)
        .field("adaptive_k_peak", peak_k)
        .field("adaptive_k_final", final_k);
    match write_bench_json("ext_focus", payload.clone()) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_focus.json: {e}");
            std::process::exit(1);
        }
    }
    if let Some(mut rec) = recorder {
        rec.record("bench", payload);
        rec.record_metrics_snapshot(cloudia_obs::metrics());
        rec.flush_global_spans();
        if let Err(e) = rec.finish() {
            eprintln!("FAIL: trace write failed: {e}");
            std::process::exit(1);
        }
    }

    if smoke {
        let mut failures = Vec::new();
        if probe_ratio > 0.25 {
            failures.push(format!(
                "focused probing used {:.1}% of uniform's round trips (> 25%)",
                probe_ratio * 100.0
            ));
        }
        if cost_ratio > 1.02 {
            failures.push(format!(
                "focused time-averaged cost {:.4} is {:.2}% above uniform's {:.4} (> 2%)",
                focused.avg_cost,
                (cost_ratio - 1.0) * 100.0,
                uniform.avg_cost
            ));
        }
        if final_k >= peak_k {
            failures.push(format!(
                "adaptive k never shrank on the quiet tail (peak {peak_k}, final {final_k})"
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "# smoke OK: <= 25% probe budget, cost within 2%, adaptive k shrank on the quiet tail"
        );
    }
}

//! Extension: dense vs candidate-pruned time-to-quality at 10× paper scale.
//!
//! The paper's CP search tops out near a few hundred instances because
//! every solver pass walks the full dense m² cost plane and full `0..m`
//! domains per node. The candidate-pruning layer
//! (`cloudia_solver::candidates` + `SearchStrategy::run_pruned`) cuts the
//! pool to the per-node candidate lists first. This bin races the two
//! paths on clustered instances at m ∈ {200, 500, 2000} (`--smoke`:
//! {200, 2000}) and reports, per size and per strategy (CP and the
//! single-prover portfolio):
//!
//! * wall-clock seconds of each path (same budget, same seed);
//! * final deployment cost of each path;
//! * the pruned pool size.
//!
//! Auto-escalation is deliberately disabled here so the timing isolates
//! the pruned search itself (an escalated run is "pruned + dense" by
//! definition); the escalation contract has its own coverage in the
//! `cloudia-core` proptests.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criterion at
//! m = 2000: the pruned solve completes ≥ 5× faster than the dense one
//! while landing within 1 % of its deployment cost, and exits non-zero
//! otherwise.
//!
//! A second section exercises the **columnar stats plane** at
//! m ∈ {5000, 10000, 20000} (`--smoke`: {5000, 10000}): synthetic
//! partial coverage is streamed into a [`PairwiseStats`] and the
//! mid-sweep pool builder (`CandidateSet::build_partial`) runs over the
//! flat columns. Smoke asserts two more acceptance gates:
//!
//! * at m = 10000 the stats plane's logical footprint
//!   ([`PairwiseStats::memory_bytes`]) stays ≤ 6 GB;
//! * at m = 5000 the columnar `build_partial` beats the retained
//!   array-of-structs walk (`build_partial_reference`) by ≥ 5× while
//!   producing the identical candidate pool.
//!
//! Three **sustained-throughput** arms then cover the sweep hot path:
//!
//! * sharded merge at m = 5000 — one stage's worth of per-link batches
//!   merged serially vs across the sweep pool; smoke asserts the
//!   parallel merge is ≥ 2× the serial one (skipped on one core) and
//!   that both produce identical statistics;
//! * adaptive sketch spilling at m = 20000 with 2048 neighbours per
//!   instance — smoke asserts the materialised footprint
//!   ([`PairwiseStats::resident_bytes`]) stays ≤ 5 GB with spilling on,
//!   where keeping every sketch would pin ~8 GB of P² state alone;
//! * pool reuse — two seeded staged drivers back to back; smoke asserts
//!   the second driver spawns zero new threads, and the spawn/task/park
//!   tallies land in the JSON so the reuse trajectory is visible across
//!   PRs.
//!
//! The machine-readable race results always land in
//! `BENCH_ext_scale.json`.

use std::time::Instant;

use cloudia_bench::{header, row, standard_network, write_bench_json, ExtArgs};
use cloudia_core::{CommGraph, CostMatrix, PrunedSolve, SearchStrategy, SolveHint};
use cloudia_measure::stats::aos;
use cloudia_measure::{LinkBatch, MeasureConfig, PairwiseStats, Scheme, Staged, SweepPool};
use cloudia_netsim::Provider;
use cloudia_obs::Json;
use cloudia_solver::{Budget, CandidateConfig, CandidateSet, CpConfig, Objective, PortfolioConfig};

struct Arm {
    name: &'static str,
    dense_s: f64,
    dense_cost: f64,
    pruned_s: f64,
    pruned: PrunedSolve,
}

fn race(
    strategy: &SearchStrategy,
    name: &'static str,
    problem: &cloudia_core::NodeDeployment,
) -> Arm {
    // No escalation: time the pruned search alone (see module docs).
    let cand = CandidateConfig { auto_escalate: false, ..CandidateConfig::default() };
    // Pruned first: if it were run second, a warm file cache/allocator
    // would flatter it.
    let t0 = Instant::now();
    let pruned = strategy.run_pruned(problem, Objective::LongestLink, &SolveHint::Cold, &cand);
    let pruned_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let dense = strategy.run(problem, Objective::LongestLink);
    let dense_s = t0.elapsed().as_secs_f64();
    Arm { name, dense_s, dense_cost: dense.cost, pruned_s, pruned }
}

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-scale", "dense vs candidate-pruned solves at 10x paper scale", scale);

    let sizes: &[usize] = if smoke { &[200, 2000] } else { &[200, 500, 2000] };
    let graph = CommGraph::mesh_2d(5, 6);
    let budget_for = |m: usize| if m >= 2000 { 4.0 } else { 2.0 };

    println!("m\tstrategy\tdense_s\tdense_cost\tpruned_s\tpruned_cost\tpool\tspeedup\tcost_ratio");
    let mut failures = Vec::new();
    let mut races = Vec::new();
    for &m in sizes {
        // Clustered costs — the EC2 shape pruning exploits: ~25 % of the
        // pool is congested and never competitive.
        let costs = CostMatrix::random_clustered(m, 0.25, 42 + m as u64);
        let problem = graph.problem(costs);
        let budget = budget_for(m);

        let cp = SearchStrategy::Cp(CpConfig {
            budget: Budget::seconds(budget),
            clusters: Some(20),
            seed: 7,
            ..CpConfig::default()
        });
        let portfolio = SearchStrategy::Portfolio(PortfolioConfig {
            budget: Budget::seconds(budget),
            threads: 2,
            seed: 7,
            ..PortfolioConfig::default()
        });

        for arm in [race(&cp, "cp", &problem), race(&portfolio, "portfolio", &problem)] {
            let speedup = arm.dense_s / arm.pruned_s.max(1e-9);
            let cost_ratio = arm.pruned.outcome.cost / arm.dense_cost.max(f64::MIN_POSITIVE);
            row(&[
                format!("{m}"),
                arm.name.to_string(),
                format!("{:.3}", arm.dense_s),
                format!("{:.4}", arm.dense_cost),
                format!("{:.3}", arm.pruned_s),
                format!("{:.4}", arm.pruned.outcome.cost),
                format!("{}", arm.pruned.pool),
                format!("{speedup:.1}x"),
                format!("{cost_ratio:.4}"),
            ]);
            if smoke && m >= 2000 {
                if speedup < 5.0 {
                    failures.push(format!(
                        "{}@m={m}: pruned speedup {speedup:.1}x < 5x (dense {:.3}s, pruned {:.3}s)",
                        arm.name, arm.dense_s, arm.pruned_s
                    ));
                }
                if cost_ratio > 1.01 {
                    failures.push(format!(
                        "{}@m={m}: pruned cost {:.4} more than 1% above dense {:.4}",
                        arm.name, arm.pruned.outcome.cost, arm.dense_cost
                    ));
                }
            }
            races.push(
                Json::obj()
                    .field("m", m)
                    .field("strategy", arm.name)
                    .field("dense_s", arm.dense_s)
                    .field("dense_cost", arm.dense_cost)
                    .field("pruned_s", arm.pruned_s)
                    .field("pruned_cost", arm.pruned.outcome.cost)
                    .field("pool", arm.pruned.pool)
                    .field("speedup", speedup)
                    .field("cost_ratio", cost_ratio),
            );
        }
    }
    // --- Columnar stats plane at m >= 5k -------------------------------
    //
    // A full netsim `Network` is O(m²) latency profiles and infeasible at
    // this scale, so the arms synthesize partial coverage directly: every
    // instance measures a ring of 8 neighbours (plus a sprinkling of
    // dark, attempted-but-answerless directions), the realistic shape of
    // an early mid-sweep pool build.
    let stat_sizes: &[usize] = if smoke { &[5_000, 10_000] } else { &[5_000, 10_000, 20_000] };
    let nodes = 30; // matches the 5x6 mesh above
    let pool_cfg = CandidateConfig::fixed(64);
    println!();
    println!("m\tpopulate_s\tmem_gb\tB_per_link\tbuild_partial_s\taos_s\tspeedup\tpool");
    let mut stat_arms = Vec::new();
    for &m in stat_sizes {
        let t0 = Instant::now();
        let mut stats = PairwiseStats::new(m);
        for j in 0..m {
            for d in 1..=8usize {
                let dst = (j + d) % m;
                stats.record_attempt(j, dst);
                if (j + d) % 23 == 0 {
                    stats.record_timeout(j, dst);
                }
                stats.record(j, dst, 0.3 + ((j + d) % 17) as f64 * 0.05);
            }
            if j % 97 == 0 {
                // Dark direction: attempted, never answered.
                stats.record_attempt(j, (j + 11) % m);
            }
        }
        let populate_s = t0.elapsed().as_secs_f64();
        let mem = stats.memory_bytes();
        let bytes_per_link = mem as f64 / (m * m) as f64;

        let t0 = Instant::now();
        let pruned = CandidateSet::build_partial(nodes, &stats, &pool_cfg, None, None, 0.0);
        let columnar_s = t0.elapsed().as_secs_f64();

        // The AoS race only runs at m = 5000: the retained estimator is
        // ~4.5 GB there, which is the point of the refactor.
        let (mut aos_s, mut speedup) = (f64::NAN, f64::NAN);
        if m == 5_000 {
            let mut mirror = aos::PairwiseStats::new(m);
            for j in 0..m {
                for d in 1..=8usize {
                    let dst = (j + d) % m;
                    mirror.record_attempt(j, dst);
                    if (j + d) % 23 == 0 {
                        mirror.record_timeout(j, dst);
                    }
                    mirror.record(j, dst, 0.3 + ((j + d) % 17) as f64 * 0.05);
                }
                if j % 97 == 0 {
                    mirror.record_attempt(j, (j + 11) % m);
                }
            }
            let t0 = Instant::now();
            let reference =
                CandidateSet::build_partial_reference(nodes, &mirror, &pool_cfg, None, None, 0.0);
            aos_s = t0.elapsed().as_secs_f64();
            speedup = aos_s / columnar_s.max(1e-9);
            if pruned.union() != reference.union() {
                failures.push(format!(
                    "stats@m={m}: columnar pool ({} ids) != aos reference pool ({} ids)",
                    pruned.union().len(),
                    reference.union().len()
                ));
            }
            if smoke && speedup < 5.0 {
                failures.push(format!(
                    "stats@m={m}: columnar build_partial speedup {speedup:.1}x < 5x \
                     (aos {aos_s:.3}s, columnar {columnar_s:.3}s)"
                ));
            }
        }
        if m == 10_000 && smoke && mem > 6_000_000_000 {
            failures.push(format!(
                "stats@m={m}: PairwiseStats footprint {:.2} GB exceeds the 6 GB gate",
                mem as f64 / 1e9
            ));
        }
        row(&[
            format!("{m}"),
            format!("{populate_s:.3}"),
            format!("{:.2}", mem as f64 / 1e9),
            format!("{bytes_per_link:.1}"),
            format!("{columnar_s:.3}"),
            format!("{aos_s:.3}"),
            format!("{speedup:.1}x"),
            format!("{}", pruned.union().len()),
        ]);
        stat_arms.push(
            Json::obj()
                .field("m", m)
                .field("populate_s", populate_s)
                .field("memory_bytes", mem)
                .field("bytes_per_link", bytes_per_link)
                .field("build_partial_s", columnar_s)
                .field("aos_build_partial_s", aos_s)
                .field("speedup", speedup)
                .field("pool", pruned.union().len()),
        );
    }

    // --- Sharded merge throughput at m = 5000 --------------------------
    //
    // The same ring-of-8 coverage, but delivered the way `run_stage` now
    // delivers it: one stage's worth of per-link batches (64 rtts per
    // link, ~2.6 M samples total) replayed through
    // `PairwiseStats::merge_batches`, once serially and once sharded
    // across the sweep pool. The sharded merge is pinned bit-identical
    // to the serial one by proptest; here the race measures what that
    // determinism costs (nothing) and what the fan-out buys.
    let merge_m = 5_000usize;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let make_batches = || {
        let mut batches = Vec::with_capacity(merge_m * 8);
        for j in 0..merge_m {
            for d in 1..=8usize {
                let dst = (j + d) % merge_m;
                let rtts: Vec<f64> =
                    (0..64).map(|s| 0.3 + ((j + d + s) % 17) as f64 * 0.05).collect();
                batches.push(LinkBatch { src: j, dst, attempts: 65, timeouts: 1, rtts });
            }
        }
        batches
    };
    let t0 = Instant::now();
    let mut serial_stats = PairwiseStats::new(merge_m);
    serial_stats.merge_batches(make_batches(), 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut sharded_stats = PairwiseStats::new(merge_m);
    sharded_stats.merge_batches(make_batches(), cores);
    let parallel_s = t0.elapsed().as_secs_f64();
    let merge_speedup = serial_s / parallel_s.max(1e-9);
    if sharded_stats.total_samples() != serial_stats.total_samples()
        || sharded_stats.mean_vector() != serial_stats.mean_vector()
    {
        failures.push(format!("merge@m={merge_m}: sharded merge diverged from the serial replay"));
    }
    println!();
    println!("merge_m\tcores\tserial_s\tparallel_s\tspeedup");
    row(&[
        format!("{merge_m}"),
        format!("{cores}"),
        format!("{serial_s:.3}"),
        format!("{parallel_s:.3}"),
        format!("{merge_speedup:.1}x"),
    ]);
    if smoke {
        if cores == 1 {
            println!("# merge-throughput gate skipped: single-core machine, nothing to fan out");
        } else if merge_speedup < 2.0 {
            failures.push(format!(
                "merge@m={merge_m}: parallel merge speedup {merge_speedup:.1}x < 2x on \
                 {cores} cores (serial {serial_s:.3}s, parallel {parallel_s:.3}s)"
            ));
        }
    }
    let merge_json = Json::obj()
        .field("m", merge_m)
        .field("cores", cores)
        .field("serial_s", serial_s)
        .field("parallel_s", parallel_s)
        .field("speedup", merge_speedup);

    // --- Adaptive sketch spilling at m = 20000 -------------------------
    //
    // 2048 neighbours per instance is ~41 M covered links; keeping a P²
    // sketch on every one of them forever would pin ~8 GB of sketch
    // state alone. The sweep instead ages the clock once per source row
    // and spills sketches quiet for 2 ticks, so only the last couple of
    // rows' sketches are ever live and the free-list recycles the same
    // few thousand table entries. The gate checks the materialised
    // footprint (`resident_bytes`), which tracks touched pages plus live
    // sketch state — the capacity-based 6 GB gate above is unchanged.
    let spill_m = 20_000usize;
    let fan = 2_048usize;
    let t0 = Instant::now();
    let mut spill_stats = PairwiseStats::new(spill_m);
    let mut spilled_total = 0u64;
    for j in 0..spill_m {
        for d in 1..=fan {
            let dst = (j + d) % spill_m;
            spill_stats.record_attempt(j, dst);
            spill_stats.record(j, dst, 0.3 + ((j + d) % 17) as f64 * 0.05);
        }
        // One "stage" per source row: age the clock, spill quiet links.
        spill_stats.advance_tick();
        spilled_total += spill_stats.spill_quiet(2) as u64;
    }
    let spill_populate_s = t0.elapsed().as_secs_f64();
    let resident = spill_stats.resident_bytes();
    let covered = (spill_m * fan) as u64;
    // Rough no-spill counterfactual: every covered link keeps its inline
    // P² sketch plus side-table entries for the whole run.
    let no_spill_sketch_gb = covered as f64 * 192.0 / 1e9;
    println!();
    println!("spill_m\tfan\tpopulate_s\tresident_gb\tno_spill_sketch_gb\tlive_sketches\tspilled");
    row(&[
        format!("{spill_m}"),
        format!("{fan}"),
        format!("{spill_populate_s:.3}"),
        format!("{:.2}", resident as f64 / 1e9),
        format!("{no_spill_sketch_gb:.2}"),
        format!("{}", spill_stats.live_sketches()),
        format!("{spilled_total}"),
    ]);
    if resident > 5_000_000_000 {
        failures.push(format!(
            "spill@m={spill_m}: resident footprint {:.2} GB exceeds the 5 GB gate with \
             spilling on",
            resident as f64 / 1e9
        ));
    }
    let spill_json = Json::obj()
        .field("m", spill_m)
        .field("fan", fan)
        .field("populate_s", spill_populate_s)
        .field("resident_bytes", resident)
        .field("no_spill_sketch_gb", no_spill_sketch_gb)
        .field("live_sketches", spill_stats.live_sketches())
        .field("spilled", spilled_total);

    // --- Worker-pool reuse across drivers ------------------------------
    //
    // Two staged drivers back to back with an explicit fan-out. The pool
    // is spawned at most once per process lifetime; the second driver
    // must reuse the same threads (zero new spawn events), and the
    // spawn/task/park tallies land in the JSON so the reuse trajectory
    // stays visible across PRs.
    let pool_net = standard_network(Provider::ec2_like(), 64, 11);
    let pool_mcfg = MeasureConfig { stage_workers: 2, ..MeasureConfig::default() };
    let scheme = Staged::new(2, 2);
    let before = SweepPool::global().stats();
    scheme.run(&pool_net, &pool_mcfg);
    let warm = SweepPool::global().stats();
    scheme.run(&pool_net, &pool_mcfg);
    let after = SweepPool::global().stats();
    let second_spawns = after.spawn_events - warm.spawn_events;
    println!();
    println!("pool_threads\tspawn_events\tthreads_spawned\tstage_tasks\tparks\tpark_ratio");
    row(&[
        format!("{}", after.threads),
        format!("{}", after.spawn_events - before.spawn_events),
        format!("{}", after.threads_spawned - before.threads_spawned),
        format!("{}", after.tasks - before.tasks),
        format!("{}", after.parks - before.parks),
        format!("{:.2}", after.park_ratio()),
    ]);
    if second_spawns != 0 {
        failures.push(format!(
            "pool: second driver triggered {second_spawns} spawn event(s); expected the \
             warm pool to be reused"
        ));
    }
    if after.tasks <= warm.tasks {
        failures.push("pool: second driver submitted no stage tasks to the pool".to_string());
    }
    let pool_json = Json::obj()
        .field("threads", after.threads)
        .field("spawn_events", after.spawn_events - before.spawn_events)
        .field("threads_spawned", after.threads_spawned - before.threads_spawned)
        .field("stage_tasks", after.tasks - before.tasks)
        .field("parks", after.parks - before.parks)
        .field("park_ratio", after.park_ratio());

    match write_bench_json(
        "ext_scale",
        Json::obj()
            .field("races", races)
            .field("stats_plane", stat_arms)
            .field("merge", merge_json)
            .field("spill", spill_json)
            .field("pool", pool_json),
    ) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_scale.json: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    if smoke {
        println!("# smoke OK: pruned path >= 5x faster within 1% of dense cost at m = 2000");
        println!(
            "# smoke OK: stats plane <= 6 GB at m = 10000, columnar build_partial >= 5x at m = 5000"
        );
        if cores > 1 {
            println!("# smoke OK: sharded merge >= 2x serial at m = 5000 on {cores} cores");
        }
        println!("# smoke OK: resident footprint <= 5 GB at m = 20000 with spilling on");
        println!("# smoke OK: sweep pool reused across drivers (zero re-spawns)");
    }
}

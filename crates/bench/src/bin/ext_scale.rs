//! Extension: dense vs candidate-pruned time-to-quality at 10× paper scale.
//!
//! The paper's CP search tops out near a few hundred instances because
//! every solver pass walks the full dense m² cost plane and full `0..m`
//! domains per node. The candidate-pruning layer
//! (`cloudia_solver::candidates` + `SearchStrategy::run_pruned`) cuts the
//! pool to the per-node candidate lists first. This bin races the two
//! paths on clustered instances at m ∈ {200, 500, 2000} (`--smoke`:
//! {200, 2000}) and reports, per size and per strategy (CP and the
//! single-prover portfolio):
//!
//! * wall-clock seconds of each path (same budget, same seed);
//! * final deployment cost of each path;
//! * the pruned pool size.
//!
//! Auto-escalation is deliberately disabled here so the timing isolates
//! the pruned search itself (an escalated run is "pruned + dense" by
//! definition); the escalation contract has its own coverage in the
//! `cloudia-core` proptests.
//!
//! In `--smoke` mode the bin **asserts** the PR's acceptance criterion at
//! m = 2000: the pruned solve completes ≥ 5× faster than the dense one
//! while landing within 1 % of its deployment cost, and exits non-zero
//! otherwise.
//!
//! The machine-readable race results always land in
//! `BENCH_ext_scale.json`.

use std::time::Instant;

use cloudia_bench::{header, row, write_bench_json, ExtArgs};
use cloudia_core::{CommGraph, CostMatrix, PrunedSolve, SearchStrategy, SolveHint};
use cloudia_obs::Json;
use cloudia_solver::{Budget, CandidateConfig, CpConfig, Objective, PortfolioConfig};

struct Arm {
    name: &'static str,
    dense_s: f64,
    dense_cost: f64,
    pruned_s: f64,
    pruned: PrunedSolve,
}

fn race(
    strategy: &SearchStrategy,
    name: &'static str,
    problem: &cloudia_core::NodeDeployment,
) -> Arm {
    // No escalation: time the pruned search alone (see module docs).
    let cand = CandidateConfig { auto_escalate: false, ..CandidateConfig::default() };
    // Pruned first: if it were run second, a warm file cache/allocator
    // would flatter it.
    let t0 = Instant::now();
    let pruned = strategy.run_pruned(problem, Objective::LongestLink, &SolveHint::Cold, &cand);
    let pruned_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let dense = strategy.run(problem, Objective::LongestLink);
    let dense_s = t0.elapsed().as_secs_f64();
    Arm { name, dense_s, dense_cost: dense.cost, pruned_s, pruned }
}

fn main() {
    let args = ExtArgs::parse();
    let (smoke, scale) = (args.smoke, args.scale);
    header("ext-scale", "dense vs candidate-pruned solves at 10x paper scale", scale);

    let sizes: &[usize] = if smoke { &[200, 2000] } else { &[200, 500, 2000] };
    let graph = CommGraph::mesh_2d(5, 6);
    let budget_for = |m: usize| if m >= 2000 { 4.0 } else { 2.0 };

    println!("m\tstrategy\tdense_s\tdense_cost\tpruned_s\tpruned_cost\tpool\tspeedup\tcost_ratio");
    let mut failures = Vec::new();
    let mut races = Vec::new();
    for &m in sizes {
        // Clustered costs — the EC2 shape pruning exploits: ~25 % of the
        // pool is congested and never competitive.
        let costs = CostMatrix::random_clustered(m, 0.25, 42 + m as u64);
        let problem = graph.problem(costs);
        let budget = budget_for(m);

        let cp = SearchStrategy::Cp(CpConfig {
            budget: Budget::seconds(budget),
            clusters: Some(20),
            seed: 7,
            ..CpConfig::default()
        });
        let portfolio = SearchStrategy::Portfolio(PortfolioConfig {
            budget: Budget::seconds(budget),
            threads: 2,
            seed: 7,
            ..PortfolioConfig::default()
        });

        for arm in [race(&cp, "cp", &problem), race(&portfolio, "portfolio", &problem)] {
            let speedup = arm.dense_s / arm.pruned_s.max(1e-9);
            let cost_ratio = arm.pruned.outcome.cost / arm.dense_cost.max(f64::MIN_POSITIVE);
            row(&[
                format!("{m}"),
                arm.name.to_string(),
                format!("{:.3}", arm.dense_s),
                format!("{:.4}", arm.dense_cost),
                format!("{:.3}", arm.pruned_s),
                format!("{:.4}", arm.pruned.outcome.cost),
                format!("{}", arm.pruned.pool),
                format!("{speedup:.1}x"),
                format!("{cost_ratio:.4}"),
            ]);
            if smoke && m >= 2000 {
                if speedup < 5.0 {
                    failures.push(format!(
                        "{}@m={m}: pruned speedup {speedup:.1}x < 5x (dense {:.3}s, pruned {:.3}s)",
                        arm.name, arm.dense_s, arm.pruned_s
                    ));
                }
                if cost_ratio > 1.01 {
                    failures.push(format!(
                        "{}@m={m}: pruned cost {:.4} more than 1% above dense {:.4}",
                        arm.name, arm.pruned.outcome.cost, arm.dense_cost
                    ));
                }
            }
            races.push(
                Json::obj()
                    .field("m", m)
                    .field("strategy", arm.name)
                    .field("dense_s", arm.dense_s)
                    .field("dense_cost", arm.dense_cost)
                    .field("pruned_s", arm.pruned_s)
                    .field("pruned_cost", arm.pruned.outcome.cost)
                    .field("pool", arm.pruned.pool)
                    .field("speedup", speedup)
                    .field("cost_ratio", cost_ratio),
            );
        }
    }
    match write_bench_json("ext_scale", Json::obj().field("races", races)) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => {
            eprintln!("FAIL: cannot write BENCH_ext_scale.json: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    if smoke {
        println!("# smoke OK: pruned path >= 5x faster within 1% of dense cost at m = 2000");
    }
}

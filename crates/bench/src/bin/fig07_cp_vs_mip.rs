//! Figure 7: convergence of CP vs MIP on LLNDP with k = 20 cost clusters.
//!
//! Paper shape: "MIP performs poorly with the scale of 100 instances" —
//! its incumbent barely improves over the bootstrap while CP finds a far
//! better deployment. The weak linear relaxation (x_ij + x_i'j' must
//! exceed 1 before the constraint bites) is reproduced by our
//! branch-and-bound exactly.

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{solve_llndp_cp, solve_llndp_mip, Budget, CpConfig, MipConfig};

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig07", "Figure 7", "CP vs MIP convergence on LLNDP (k = 20)", scale);
    let (rows, cols, m) = scale.pick((5, 6, 34), (9, 10, 100));
    let budget_s = scale.pick(15.0, 300.0);
    let net = standard_network(Provider::ec2_like(), m, 42);
    let graph = CommGraph::mesh_2d(rows, cols);
    let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, 0);
    let problem = graph.problem(costs);

    println!("# mesh {rows}x{cols} on {m} instances, budget {budget_s}s per solver");
    println!("solver\telapsed_s\tlongest_link_ms");

    let cp = solve_llndp_cp(
        &problem,
        &CpConfig {
            budget: Budget::seconds(budget_s),
            clusters: Some(20),
            seed: 1,
            ..CpConfig::default()
        },
    );
    for &(t, c) in &cp.curve {
        fig.row(&["cp".into(), format!("{t:.2}"), format!("{c:.3}")]);
    }
    fig.row(&["cp".into(), "final".into(), format!("{:.3}", cp.cost)]);

    let mip = solve_llndp_mip(
        &problem,
        &MipConfig {
            budget: Budget::seconds(budget_s),
            clusters: Some(20),
            seed: 1,
            ..MipConfig::default()
        },
    );
    for &(t, c) in &mip.curve {
        fig.row(&["mip".into(), format!("{t:.2}"), format!("{c:.3}")]);
    }
    fig.row(&["mip".into(), "final".into(), format!("{:.3}", mip.cost)]);

    println!();
    println!(
        "# paper: CP finds a significantly better solution; here cp={:.3} vs mip={:.3} ({}x)",
        cp.cost,
        mip.cost,
        (mip.cost / cp.cost * 10.0).round() / 10.0
    );

    fig.finish();
}

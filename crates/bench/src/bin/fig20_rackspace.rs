//! Figure 20: CDF of mean pairwise latencies among 50 Rackspace-like
//! instances (paper Appendix 3).
//!
//! Paper shape: ~5 % of pairs below 0.24 ms, top 5 % above 0.38 ms.

use cloudia_bench::{standard_network, true_mean_vector, Fig, Scale};
use cloudia_measure::error::quantile;
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig20", "Figure 20", "latency heterogeneity in Rackspace-like region", scale);
    let net = standard_network(Provider::rackspace_like(), 50, 42);
    let means = true_mean_vector(&net);
    fig.cdf("rackspace", &means, 40);

    println!();
    println!("# summary (paper: p5 < 0.24 ms, p95 > 0.38 ms)");
    for q in [0.05, 0.50, 0.95] {
        fig.row(&[format!("p{:.0}", q * 100.0), format!("{:.3} ms", quantile(&means, q))]);
    }

    fig.finish();
}

//! Figure 8: CP solver scalability — average convergence time vs number
//! of instances, over random instance subsets.
//!
//! Paper methodology: 50 random subsets per size out of a 100-instance
//! allocation; convergence time = time after which the solver cannot
//! improve the best solution within the search budget. Paper shape:
//! convergence time increases acceptably with problem size.

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, CostMatrix, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{solve_llndp_cp, Budget, CpConfig};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig08", "Figure 8", "CP convergence time vs number of instances", scale);
    let full = 100;
    let subsets_per_size = scale.pick(5, 50);
    let budget_s = scale.pick(5.0, 60.0);
    let net = standard_network(Provider::ec2_like(), full, 42);
    let all_costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, 0);
    let mut rng = StdRng::seed_from_u64(9);

    println!("# subsets/size: {subsets_per_size}, per-run budget {budget_s}s");
    println!("instances\tavg_convergence_s\tavg_cost_ms");
    for m in [20usize, 40, 60, 80, 100] {
        // Mesh sized to ~90 % of instances.
        let nodes = (m as f64 * 0.9) as usize;
        let (rows, cols) = mesh_dims(nodes);
        let graph = CommGraph::mesh_2d(rows, cols);
        let mut conv_total = 0.0;
        let mut cost_total = 0.0;
        for s in 0..subsets_per_size {
            // Random m-subset of the 100 instances.
            let mut idx: Vec<usize> = (0..full).collect();
            idx.shuffle(&mut rng);
            idx.truncate(m);
            let sub = sub_costs(&all_costs, &idx);
            let problem = graph.problem(sub);
            let out = solve_llndp_cp(
                &problem,
                &CpConfig {
                    budget: Budget::seconds(budget_s),
                    clusters: Some(20),
                    seed: s as u64,
                    ..CpConfig::default()
                },
            );
            // Convergence time = timestamp of the last improvement.
            conv_total += out.curve.last().map(|&(t, _)| t).unwrap_or(0.0);
            cost_total += out.cost;
        }
        fig.row(&[
            format!("{m}"),
            format!("{:.2}", conv_total / subsets_per_size as f64),
            format!("{:.3}", cost_total / subsets_per_size as f64),
        ]);
    }

    fig.finish();
}

fn mesh_dims(nodes: usize) -> (usize, usize) {
    let r = (nodes as f64).sqrt() as usize;
    for rows in (1..=r).rev() {
        if nodes.is_multiple_of(rows) {
            return (rows, nodes / rows);
        }
    }
    (1, nodes)
}

fn sub_costs(all: &CostMatrix, idx: &[usize]) -> CostMatrix {
    all.submatrix(&idx.iter().map(|&i| i as u32).collect::<Vec<_>>())
}

//! Figure 2: mean latency of four representative links over a 10-day
//! (200 h) experiment, averaged every 2 h, EC2-like region.
//!
//! Paper shape: flat, well-separated lines — mean latency is stable.

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_netsim::{InstanceId, Provider};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new(
        "fig02",
        "Figure 2",
        "mean latency stability over 200 h (2 h buckets), EC2-like",
        scale,
    );
    let net = standard_network(Provider::ec2_like(), 100, 42);
    let mut rng = StdRng::seed_from_u64(7);

    // Four representative links spanning the latency range: pick pairs at
    // different quantiles of the mean distribution.
    let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
    for i in 0..net.len() as u32 {
        for j in 0..net.len() as u32 {
            if i != j {
                pairs.push((i, j, net.mean_rtt(InstanceId(i), InstanceId(j))));
            }
        }
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
    let picks = [
        pairs[pairs.len() / 10],
        pairs[pairs.len() * 4 / 10],
        pairs[pairs.len() * 7 / 10],
        pairs[pairs.len() * 95 / 100],
    ];

    let buckets = 100; // 200 h / 2 h
    let traces: Vec<_> = picks
        .iter()
        .map(|&(a, b, _)| {
            net.link_trace(InstanceId(a), InstanceId(b), 2.0, buckets, 2000, &mut rng)
        })
        .collect();

    fig.row(&["hours".into(), "link1".into(), "link2".into(), "link3".into(), "link4".into()]);
    for t in 0..buckets {
        let mut cells = vec![format!("{:.0}", traces[0].hours[t])];
        for trace in &traces {
            cells.push(format!("{:.3}", trace.mean_rtt[t]));
        }
        fig.row(&cells);
    }

    println!();
    println!("# stability: coefficient of variation per link (paper: small)");
    for (k, trace) in traces.iter().enumerate() {
        fig.row(&[
            format!("link{} (mean {:.3} ms)", k + 1, picks[k].2),
            format!("cv {:.1} %", trace.coefficient_of_variation() * 100.0),
        ]);
    }

    fig.finish();
}

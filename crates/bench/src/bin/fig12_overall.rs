//! Figure 12: overall effectiveness — percentage reduction in
//! time-to-solution / response time over five different allocations for
//! the three workloads, ClouDiA deployment vs default deployment.
//!
//! Paper shape: 15–55 % reduction across all allocation × workload
//! combinations; aggregation query benefits most on average, key-value
//! store least (its cost function is an imperfect match).

use cloudia_bench::{Fig, Scale};
use cloudia_core::{Advisor, AdvisorConfig, LatencyMetric, MeasurementPlan, Objective};
use cloudia_measure::MeasureConfig;
use cloudia_netsim::{Cloud, Provider};
use cloudia_workloads::{AggregationQuery, BehavioralSim, KvStore, Workload};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig12", "Figure 12", "time reduction over 5 allocations, 3 workloads", scale);
    let search_s = scale.pick(8.0, 120.0);

    let workloads: Vec<(Box<dyn Workload>, Objective)> = match scale {
        Scale::Quick => vec![
            (
                Box::new(BehavioralSim { sample_ticks: 400, ..BehavioralSim::new(6, 6) }),
                Objective::LongestLink,
            ),
            (Box::new(AggregationQuery::new(6, 2)), Objective::LongestPath),
            (Box::new(KvStore::new(8, 28)), Objective::LongestLink),
        ],
        Scale::Paper => vec![
            (
                Box::new(BehavioralSim { sample_ticks: 1000, ..BehavioralSim::new(10, 10) }),
                Objective::LongestLink,
            ),
            (Box::new(AggregationQuery::new(7, 2)), Objective::LongestPath),
            (Box::new(KvStore::new(20, 80)), Objective::LongestLink),
        ],
    };

    println!("allocation\tworkload\tdefault_ms\tcloudia_ms\treduction_%");
    let mut reductions = Vec::new();
    for alloc_id in 1..=5u64 {
        for (w, objective) in &workloads {
            let graph = w.graph();
            let n = graph.num_nodes();
            // 10 % over-allocation as in the paper.
            let extra = (n as f64 * 0.1).ceil() as usize;
            let mut cloud = Cloud::boot(Provider::ec2_like(), 1000 + alloc_id);
            let allocation = cloud.allocate(n + extra);
            let net = cloud.network(&allocation);

            let advisor = Advisor::new(AdvisorConfig {
                objective: *objective,
                metric: LatencyMetric::Mean,
                over_allocation: 0.1,
                strategy: None,
                search_time_s: search_s,
                search_threads: 1,
                candidates: None,
                measurement: MeasurementPlan {
                    ks: 10,
                    sweeps: 2,
                    config: MeasureConfig::default(),
                },
            });
            let outcome = advisor.run_on_network(&net, &graph, alloc_id);

            let default: Vec<u32> = (0..n as u32).collect();
            let t_default = w.run(&net, &default, alloc_id).value_ms;
            let t_cloudia = w.run(&net, &outcome.deployment, alloc_id).value_ms;
            let reduction = (t_default - t_cloudia) / t_default * 100.0;
            reductions.push(reduction);
            fig.row(&[
                format!("{alloc_id}"),
                w.name().into(),
                format!("{t_default:.1}"),
                format!("{t_cloudia:.1}"),
                format!("{reduction:.1}"),
            ]);
        }
    }
    let (lo, hi) = reductions
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    println!();
    println!("# observed reduction range: {lo:.1} % .. {hi:.1} % (paper: 15–55 %)");

    fig.finish();
}

//! Figure 13: time-to-solution of the behavioral simulation under
//! different over-allocation ratios (0–50 %), default vs ClouDiA.
//!
//! Paper methodology: a single allocation of 150 instances; the
//! over-allocation-x case uses the first (1 + x)·100 instances in default
//! order; the default deployment always uses the first 100. Paper shape:
//! 16 % improvement at 0 % over-allocation (pure injection choice), 28 %
//! at 10 %, 38 % at 50 % — the first 10 % of extra instances buys the
//! biggest step.

use cloudia_bench::{Fig, Scale};
use cloudia_core::{Advisor, AdvisorConfig, LatencyMetric, MeasurementPlan, Objective};
use cloudia_measure::MeasureConfig;
use cloudia_netsim::{Cloud, Provider};
use cloudia_workloads::{BehavioralSim, Workload};

fn main() {
    let scale = Scale::from_env();
    let mut fig =
        Fig::new("fig13", "Figure 13", "over-allocation sweep, behavioral simulation", scale);
    let (rows, cols) = scale.pick((6, 6), (10, 10));
    let n = rows * cols;
    let search_s = scale.pick(8.0, 120.0);
    let sim =
        BehavioralSim { sample_ticks: scale.pick(400, 1000), ..BehavioralSim::new(rows, cols) };

    // One allocation of 1.5·n, as in the paper.
    let mut cloud = Cloud::boot(Provider::ec2_like(), 4242);
    let allocation = cloud.allocate(n + n / 2);
    let full_net = cloud.network(&allocation);

    let default: Vec<u32> = (0..n as u32).collect();
    let t_default = sim.run(&full_net, &default, 9).value_ms;

    println!("# mesh {rows}x{cols} ({n} nodes), allocation of {} instances", n + n / 2);
    println!("over_allocation_%\tdefault_s\tcloudia_s\timprovement_%");
    for pct in [0usize, 10, 20, 30, 40, 50] {
        let avail = n + n * pct / 100;
        let net = full_net.prefix(avail);
        let advisor = Advisor::new(AdvisorConfig {
            objective: Objective::LongestLink,
            metric: LatencyMetric::Mean,
            over_allocation: pct as f64 / 100.0,
            strategy: None,
            search_time_s: search_s,
            search_threads: 1,
            candidates: None,
            measurement: MeasurementPlan { ks: 10, sweeps: 2, config: MeasureConfig::default() },
        });
        let outcome = advisor.run_on_network(&net, &sim.graph(), 9);
        let t_cloudia = sim.run(&net, &outcome.deployment, 9).value_ms;
        fig.row(&[
            format!("{pct}"),
            format!("{:.1}", t_default / 1000.0),
            format!("{:.1}", t_cloudia / 1000.0),
            format!("{:.1}", (t_default - t_cloudia) / t_default * 100.0),
        ]);
    }
    println!();
    println!("# paper: 16 % at 0 %, 28 % at 10 %, 38 % at 50 % over-allocation");

    fig.finish();
}

//! Figure 14: lightweight approaches vs CP on LLNDP — average longest-link
//! latency of G1, G2, R1 (1,000 random), R2 (same time budget as CP), and
//! CP, over many allocations.
//!
//! Paper shape: G1 worst (~66.7 % above CP); G2 much better; R1 slightly
//! better than G2; R2 within ~8.65 % of CP.

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{
    solve_greedy, solve_llndp_cp, solve_random_budget, solve_random_count, Budget, CpConfig,
    GreedyVariant, Objective,
};

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig14", "Figure 14", "lightweight approaches vs CP on LLNDP", scale);
    // Paper: 20 allocations of 50 instances, 10 % over-allocation
    // (45 nodes); CP and R2 run for 2 minutes.
    let allocations = scale.pick(8, 20);
    let budget_s = scale.pick(3.0, 120.0);
    let m = 50;
    let graph = CommGraph::mesh_2d(5, 9); // 45 nodes

    let mut totals = [0.0f64; 5]; // g1, g2, r1, r2, cp
    for a in 0..allocations {
        let net = standard_network(Provider::ec2_like(), m, 100 + a as u64);
        let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, a as u64);
        let problem = graph.problem(costs);

        totals[0] += solve_greedy(&problem, GreedyVariant::G1).cost;
        totals[1] += solve_greedy(&problem, GreedyVariant::G2).cost;
        totals[2] += solve_random_count(&problem, Objective::LongestLink, 1000, a as u64).cost;
        totals[3] += solve_random_budget(
            &problem,
            Objective::LongestLink,
            Budget::seconds(budget_s),
            0,
            a as u64,
        )
        .cost;
        totals[4] += solve_llndp_cp(
            &problem,
            &CpConfig {
                budget: Budget::seconds(budget_s),
                clusters: Some(20),
                seed: a as u64,
                ..CpConfig::default()
            },
        )
        .cost;
    }

    println!("# {allocations} allocations of {m} instances, 45-node mesh, {budget_s}s for R2/CP");
    println!("method\tavg_longest_link_ms\tvs_cp");
    let cp = totals[4] / allocations as f64;
    for (name, total) in [
        ("G1", totals[0]),
        ("G2", totals[1]),
        ("R1", totals[2]),
        ("R2", totals[3]),
        ("CP", totals[4]),
    ] {
        let avg = total / allocations as f64;
        fig.row(&[name.into(), format!("{avg:.3}"), format!("{:+.1} %", (avg / cp - 1.0) * 100.0)]);
    }
    println!();
    println!("# paper: G1 +66.7 %, R2 +8.65 % vs CP; R1 slightly better than G2");

    fig.finish();
}

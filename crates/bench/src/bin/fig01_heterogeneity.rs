//! Figure 1: CDF of mean pairwise end-to-end latencies among 100 EC2-like
//! instances (1 KB TCP round trips).
//!
//! Paper shape: ~10 % of pairs above 0.7 ms, bottom ~10 % below 0.4 ms,
//! range ~0.2–1.4 ms.

use cloudia_bench::{standard_network, true_mean_vector, Fig, Scale};
use cloudia_measure::error::quantile;
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new("fig01", "Figure 1", "latency heterogeneity in EC2-like region", scale);
    let n = 100;
    let net = standard_network(Provider::ec2_like(), n, 42);
    let means = true_mean_vector(&net);

    fig.cdf("ec2", &means, 40);

    println!();
    println!("# summary (paper: p10 < 0.4 ms, p90 > 0.7 ms, max ~1.4 ms)");
    for q in [0.05, 0.10, 0.50, 0.90, 0.95, 1.0] {
        fig.row(&[format!("p{:.0}", q * 100.0), format!("{:.3} ms", quantile(&means, q))]);
    }
    let above = means.iter().filter(|&&m| m > 0.7).count() as f64 / means.len() as f64;
    let below = means.iter().filter(|&&m| m < 0.4).count() as f64 / means.len() as f64;
    fig.row(&["frac > 0.7 ms".into(), format!("{:.1} %", above * 100.0)]);
    fig.row(&["frac < 0.4 ms".into(), format!("{:.1} %", below * 100.0)]);

    fig.finish();
}

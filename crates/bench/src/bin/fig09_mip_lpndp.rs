//! Figure 9: convergence of the MIP solver on LPNDP with different
//! numbers of cost clusters (k = 5, k = 20, no clustering).
//!
//! Paper shape: k = 5 performs poorly; clustering does *not* improve
//! LPNDP performance because path costs are sums, so the solver cannot
//! exploit fewer distinct values.

use cloudia_bench::{measured_costs, standard_network, Fig, Scale};
use cloudia_core::{CommGraph, LatencyMetric};
use cloudia_netsim::Provider;
use cloudia_solver::{solve_lpndp_mip, Budget, MipConfig};

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new(
        "fig09",
        "Figure 9",
        "MIP convergence on LPNDP by cost clusters (aggregation tree)",
        scale,
    );
    // Aggregation tree with depth <= 4 (paper §6.3.3); 45 nodes / 50
    // instances at paper scale.
    let (fanout, levels, m) = scale.pick((3, 2, 15), (2, 4, 50));
    let budget_s = scale.pick(10.0, 300.0);
    let net = standard_network(Provider::ec2_like(), m, 42);
    let graph = CommGraph::aggregation_tree(fanout, levels);
    let costs = measured_costs(&net, LatencyMetric::Mean, 5, 2, 0);
    let problem = graph.problem(costs);

    println!(
        "# tree fanout {fanout} levels {levels} ({} nodes) on {m} instances, budget {budget_s}s",
        graph.num_nodes()
    );
    println!("config\telapsed_s\tlongest_path_ms");
    for (label, clusters) in [("k=5", Some(5)), ("k=20", Some(20)), ("no-clustering", None)] {
        let out = solve_lpndp_mip(
            &problem,
            &MipConfig {
                budget: Budget::seconds(budget_s),
                clusters,
                seed: 1,
                ..MipConfig::default()
            },
        );
        for &(t, c) in &out.curve {
            fig.row(&[label.into(), format!("{t:.2}"), format!("{c:.3}")]);
        }
        fig.row(&[
            label.into(),
            "final".into(),
            format!(
                "{:.3} (optimal_proven={}, nodes={})",
                out.cost, out.proven_optimal, out.explored
            ),
        ]);
    }
    println!();
    println!("# paper: clustering does not improve LPNDP (costs aggregate by summation)");

    fig.finish();
}

//! Figure 4: CDF of the normalized relative error of the staged and
//! uncoordinated measurement schemes against the token-passing baseline,
//! 50 instances.
//!
//! Paper shape: staged — 90 % of links under 10 % error, max < 30 %;
//! uncoordinated — 10 % of links above 50 % error.

use cloudia_bench::{standard_network, Fig, Scale};
use cloudia_measure::error::{cdf_at, normalized_relative_errors, quantile};
use cloudia_measure::{MeasureConfig, Scheme, Staged, TokenPassing, Uncoordinated};
use cloudia_netsim::Provider;

fn main() {
    let scale = Scale::from_env();
    let mut fig = Fig::new(
        "fig04",
        "Figure 4",
        "normalized relative error vs token passing, 50 instances",
        scale,
    );
    let n = 50;
    let net = standard_network(Provider::ec2_like(), n, 42);
    let cfg = MeasureConfig::default();

    let samples_per_pair = scale.pick(24, 60);
    let token = TokenPassing::new(samples_per_pair).run(&net, &cfg);
    // Match total probe counts across schemes.
    let staged = Staged::new(samples_per_pair / 2, 4).run(&net, &cfg);
    let probes_per_instance = samples_per_pair * (n - 1);
    let uncoord = Uncoordinated::new(probes_per_instance).run(&net, &cfg);

    let baseline = token.mean_vector();
    let err_staged = normalized_relative_errors(&staged.mean_vector(), &baseline);
    let err_uncoord = normalized_relative_errors(&uncoord.mean_vector(), &baseline);

    // The paper plots error in percent.
    let pct = |v: &[f64]| v.iter().map(|e| e * 100.0).collect::<Vec<_>>();
    fig.cdf("staged", &pct(&err_staged), 40);
    println!();
    fig.cdf("uncoordinated", &pct(&err_uncoord), 40);

    println!();
    println!("# summary (paper: staged p90 < 10 %, staged max < 30 %; uncoordinated p90 > 50 %)");
    for (name, errs) in [("staged", &err_staged), ("uncoordinated", &err_uncoord)] {
        fig.row(&[
            name.into(),
            format!("p50 {:.1} %", quantile(errs, 0.5) * 100.0),
            format!("p90 {:.1} %", quantile(errs, 0.9) * 100.0),
            format!("max {:.1} %", quantile(errs, 1.0) * 100.0),
            format!("frac<10% {:.2}", cdf_at(errs, 0.10)),
        ]);
    }
    fig.row(&[
        "elapsed_ms".into(),
        format!("token {:.0}", token.elapsed_ms),
        format!("staged {:.0}", staged.elapsed_ms),
        format!("uncoordinated {:.0}", uncoord.elapsed_ms),
    ]);

    fig.finish();
}

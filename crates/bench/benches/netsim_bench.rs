//! Criterion micro-benchmarks for the network simulator substrate:
//! cloud boot + allocation, network construction, probe sampling, and
//! event-engine throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudia_netsim::{Cloud, InstanceId, MessageSpec, NicParams, Provider};
use rand::{rngs::StdRng, SeedableRng};

fn bench_boot_allocate(c: &mut Criterion) {
    c.bench_function("boot_and_allocate_100", |b| {
        b.iter(|| {
            let mut cloud = Cloud::boot(Provider::ec2_like(), black_box(7));
            cloud.allocate(100)
        })
    });
}

fn bench_network_build(c: &mut Criterion) {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let alloc = cloud.allocate(100);
    c.bench_function("network_build_100", |b| b.iter(|| cloud.network(black_box(&alloc))));
}

fn bench_sampling(c: &mut Criterion) {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let alloc = cloud.allocate(50);
    let net = cloud.network(&alloc);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("sample_rtt_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..50u32 {
                for j in 0..20u32 {
                    if i != j {
                        acc += net.sample_rtt(InstanceId(i), InstanceId(j), &mut rng);
                    }
                }
            }
            acc
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let alloc = cloud.allocate(50);
    let net = cloud.network(&alloc);
    c.bench_function("engine_10k_messages", |b| {
        b.iter(|| {
            let mut e = net.engine(NicParams::default(), 1);
            for k in 0..10_000u32 {
                e.send(MessageSpec {
                    src: InstanceId(k % 50),
                    dst: InstanceId((k + 1) % 50),
                    size_kb: 1.0,
                    kind: 0,
                    token: k as u64,
                });
                if k % 8 == 7 {
                    while e.next_delivery().is_some() {}
                }
            }
            while e.next_delivery().is_some() {}
            e.now()
        })
    });
}

criterion_group!(benches, bench_boot_allocate, bench_network_build, bench_sampling, bench_engine);
criterion_main!(benches);

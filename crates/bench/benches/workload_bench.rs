//! Criterion micro-benchmarks for workload evaluation throughput —
//! how fast the three applications can be "executed" over the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudia_netsim::{Cloud, Provider};
use cloudia_workloads::{AggregationQuery, BehavioralSim, KvStore, Workload};

fn network(n: usize) -> cloudia_netsim::Network {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);

    let sim = BehavioralSim { sample_ticks: 200, ..BehavioralSim::new(6, 6) };
    let net = network(36);
    let d: Vec<u32> = (0..36).collect();
    group
        .bench_function("behavioral_6x6_200_ticks", |b| b.iter(|| sim.run(black_box(&net), &d, 1)));

    let agg = AggregationQuery { queries: 200, ..AggregationQuery::new(6, 2) };
    let net_a = network(43);
    let d_a: Vec<u32> = (0..43).collect();
    group.bench_function("aggregation_43_200_queries", |b| {
        b.iter(|| agg.run(black_box(&net_a), &d_a, 1))
    });

    let kv = KvStore { queries: 500, ..KvStore::new(8, 28) };
    let net_k = network(36);
    group.bench_function("kvstore_36_500_queries", |b| b.iter(|| kv.run(black_box(&net_k), &d, 1)));

    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);

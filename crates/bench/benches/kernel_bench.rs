//! Criterion micro-benchmarks for the pinned solver hot kernels, plus a
//! self-checking race: with `--bench` the run also asserts that the
//! branch-reduced [`cloudia_solver::kernels::scan_row_evidence`] sweep
//! beats the scalar per-element walk it replaced on a realistic sparse
//! row shape (m = 10000, ~8 hits per row). The assertion keeps the
//! kernel honest across PRs — a refactor that quietly re-introduces the
//! per-element branches fails the bench run, not just a profile.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use cloudia_solver::kernels::scan_row_evidence;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The pre-kernel scalar walk, transcribed from the old `build_partial`
/// inner loop: one bounds-checked branch chain per element, including
/// the `dst != src` diagonal test the kernel dropped (the stats plane
/// guarantees a structurally-zero diagonal).
fn scalar_walk(
    src: usize,
    row_count: &[u64],
    row_att: &[u64],
    mut on_hit: impl FnMut(usize, bool),
) {
    for dst in 0..row_count.len() {
        if dst != src && (row_count[dst] > 0 || row_att[dst] > 0) {
            on_hit(dst, row_count[dst] > 0);
        }
    }
}

/// Sparse evidence rows: `hits` observed links and `hits / 4` dark
/// (attempted-only) links scattered uniformly over `m` columns.
fn sparse_rows(m: usize, rows: usize, hits: usize, seed: u64) -> Vec<(Vec<u64>, Vec<u64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| {
            let mut count = vec![0u64; m];
            let mut att = vec![0u64; m];
            for _ in 0..hits {
                let dst = rng.random_range(0..m);
                count[dst] += 1;
                att[dst] += 1;
            }
            for _ in 0..hits / 4 {
                att[rng.random_range(0..m)] += 1;
            }
            (count, att)
        })
        .collect()
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_row_evidence");
    for &m in &[1_000usize, 10_000] {
        let rows = sparse_rows(m, 16, 8, 7);
        group.bench_with_input(BenchmarkId::new("kernel", m), &rows, |b, rows| {
            b.iter(|| {
                let mut acc = 0usize;
                for (count, att) in rows {
                    scan_row_evidence(count, att, |dst, observed| {
                        acc += dst + observed as usize;
                    });
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", m), &rows, |b, rows| {
            b.iter(|| {
                let mut acc = 0usize;
                for (count, att) in rows {
                    scalar_walk(0, count, att, |dst, observed| {
                        acc += dst + observed as usize;
                    });
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(kernels, bench_scan);

/// Timed assertion arm: the kernel must beat the scalar walk. Uses a
/// plain `Instant` race (not criterion statistics) so it can fail the
/// process with a clear message.
fn assert_kernel_wins() {
    let m = 10_000usize;
    let rows = sparse_rows(m, 64, 8, 11);
    let reps = 200usize;
    let race = |f: &dyn Fn(&[u64], &[u64]) -> usize| {
        // Warm the cache once, then time.
        let mut acc = 0usize;
        for (count, att) in &rows {
            acc += f(count, att);
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for (count, att) in &rows {
                acc += f(count, att);
            }
        }
        (t0.elapsed().as_secs_f64(), black_box(acc))
    };
    let (kernel_s, kernel_acc) = race(&|count, att| {
        let mut acc = 0usize;
        scan_row_evidence(count, att, |dst, observed| acc += dst + observed as usize);
        acc
    });
    let (scalar_s, scalar_acc) = race(&|count, att| {
        let mut acc = 0usize;
        scalar_walk(m, count, att, |dst, observed| acc += dst + observed as usize);
        acc
    });
    assert_eq!(kernel_acc, scalar_acc, "kernel visited different evidence than the scalar walk");
    let speedup = scalar_s / kernel_s.max(1e-12);
    println!("# kernel race: scalar {scalar_s:.4}s, kernel {kernel_s:.4}s, speedup {speedup:.2}x");
    assert!(
        kernel_s < scalar_s,
        "scan_row_evidence ({kernel_s:.4}s) must beat the scalar walk ({scalar_s:.4}s)"
    );
}

fn main() {
    // `cargo bench` passes `--bench`; `cargo test` passes `--test` (the
    // criterion shim then runs each body exactly once). The timed
    // assertion only runs under a real bench invocation — a single-shot
    // test-mode sample is too noisy to gate on.
    kernels();
    if std::env::args().any(|a| a == "--bench") {
        assert_kernel_wins();
    }
}

//! Criterion micro-benchmarks for the solver stack: CP search, greedy,
//! random sampling, 1-D k-means clustering, and the simplex LP core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cloudia_solver::{
    cluster::CostClusters,
    cp::{solve_llndp_cp, CpConfig, Propagation},
    greedy::{solve_greedy, GreedyVariant},
    lp::{solve as lp_solve, Constraint, Lp, Sense},
    portfolio::{solve_portfolio, PortfolioConfig},
    problem::{Costs, NodeDeployment},
    random::solve_random_count,
    Budget, Objective,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_problem(n: usize, m: usize, seed: u64) -> NodeDeployment {
    // 2D-mesh-ish chain plus cross links for realistic structure.
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    for i in 0..(n as u32).saturating_sub(6) {
        edges.push((i, i + 6));
    }
    NodeDeployment::new(n, edges, Costs::random_uniform(m, seed))
}

fn bench_cp(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_llndp");
    group.sample_size(10);
    for &(n, m) in &[(9usize, 12usize), (18, 20), (27, 30)] {
        let problem = random_problem(n, m, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &problem,
            |b, p| {
                b.iter(|| {
                    solve_llndp_cp(
                        p,
                        &CpConfig {
                            budget: Budget::seconds(1.0),
                            clusters: Some(20),
                            ..CpConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

/// Trail-based vs copy-domains propagation under an identical node budget:
/// the two backends explore the same search tree, so the per-iteration
/// time ratio is exactly the nodes/sec speedup of the trail rewrite.
fn bench_cp_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_propagation_50k_nodes");
    group.sample_size(10);
    let problem = random_problem(27, 30, 1);
    for (name, propagation) in
        [("trail", Propagation::Trail), ("clone_domains", Propagation::CloneDomains)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                solve_llndp_cp(
                    black_box(&problem),
                    &CpConfig {
                        budget: Budget::nodes(50_000),
                        clusters: Some(20),
                        propagation,
                        ..CpConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    let problem = random_problem(27, 30, 1);
    group.bench_function("deterministic_20k_nodes_2_threads", |b| {
        b.iter(|| {
            solve_portfolio(
                black_box(&problem),
                Objective::LongestLink,
                &PortfolioConfig { threads: 2, ..PortfolioConfig::deterministic(20_000, 7) },
            )
        })
    });
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    let problem = random_problem(45, 50, 2);
    group.bench_function("g1_45x50", |b| {
        b.iter(|| solve_greedy(black_box(&problem), GreedyVariant::G1))
    });
    group.bench_function("g2_45x50", |b| {
        b.iter(|| solve_greedy(black_box(&problem), GreedyVariant::G2))
    });
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    let problem = random_problem(45, 50, 3);
    c.bench_function("random_r1_1000_draws", |b| {
        b.iter(|| solve_random_count(black_box(&problem), Objective::LongestLink, 1000, 7))
    });
}

fn bench_cluster(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let costs: Vec<f64> = (0..9900).map(|_| 0.2 + rng.random::<f64>()).collect();
    c.bench_function("kmeans_k20_9900_costs", |b| {
        b.iter(|| CostClusters::compute(black_box(&costs), 20, 0.01))
    });
}

fn bench_lp(c: &mut Criterion) {
    // Assignment LP of size 20x20.
    let n = 20;
    let var = |i: usize, j: usize| i * n + j;
    let mut rng = StdRng::seed_from_u64(5);
    let mut constraints = Vec::new();
    for i in 0..n {
        constraints.push(Constraint::new(
            (0..n).map(|j| (var(i, j), 1.0)).collect(),
            Sense::Eq,
            1.0,
        ));
        constraints.push(Constraint::new(
            (0..n).map(|j| (var(j, i), 1.0)).collect(),
            Sense::Le,
            1.0,
        ));
    }
    let lp = Lp {
        num_vars: n * n,
        objective: (0..n * n).map(|_| rng.random::<f64>()).collect(),
        constraints,
    };
    c.bench_function("simplex_assignment_20x20", |b| b.iter(|| lp_solve(black_box(&lp), 50_000)));
}

criterion_group!(
    benches,
    bench_cp,
    bench_cp_propagation,
    bench_portfolio,
    bench_greedy,
    bench_random,
    bench_cluster,
    bench_lp
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the measurement schemes: simulated
//! probe throughput per scheme and estimator overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudia_measure::stats::{P2Quantile, PairwiseStats, Welford};
use cloudia_measure::{MeasureConfig, Scheme, Staged, TokenPassing, Uncoordinated};
use cloudia_netsim::{Cloud, Provider};

fn network(n: usize) -> cloudia_netsim::Network {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

fn bench_schemes(c: &mut Criterion) {
    let net = network(20);
    let cfg = MeasureConfig::default();
    let mut group = c.benchmark_group("schemes_20_instances");
    group.sample_size(10);
    group.bench_function("token_2_per_pair", |b| {
        b.iter(|| TokenPassing::new(2).run(black_box(&net), &cfg))
    });
    group.bench_function("uncoordinated_40_per_instance", |b| {
        b.iter(|| Uncoordinated::new(40).run(black_box(&net), &cfg))
    });
    group.bench_function("staged_ks2_sweeps2", |b| {
        b.iter(|| Staged::new(2, 2).run(black_box(&net), &cfg))
    });
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    c.bench_function("link_sketches_10k_records", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            let mut p99 = P2Quantile::new(0.99);
            for i in 0..10_000 {
                let x = 0.5 + (i % 17) as f64 * 0.01;
                w.record(x);
                p99.record(x);
            }
            (w.mean(), p99.value())
        })
    });
    c.bench_function("pairwise_stats_mean_vector_100", |b| {
        let mut s = PairwiseStats::new(100);
        for i in 0..100 {
            for j in 0..100 {
                if i != j {
                    s.record(i, j, 0.5);
                }
            }
        }
        b.iter(|| black_box(&s).mean_vector())
    });
}

criterion_group!(benches, bench_schemes, bench_estimators);
criterion_main!(benches);

//! Named counters, gauges, and histograms.
//!
//! The registry is a mutex-guarded sorted map so snapshots iterate in a
//! deterministic name order. Hot paths must not hit the mutex per event:
//! the convention throughout the workspace is to accumulate *local*
//! counters (e.g. the netsim engine's delivery tallies, the sweep
//! driver's stage tally) and flush deltas at a coarse grain (per driver
//! run, per epoch, per worker exit — [`MetricsRegistry::counter_add_many`]
//! takes the whole batch under one lock), so registry traffic is
//! thousands of times sparser than the events it summarizes.

use crate::sketch::{P2Quantile, Welford};
use crate::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds: half-decade log spacing covering
/// microseconds-to-hours when values are in milliseconds (and equally
/// serviceable for dimensionless counts). Values above the last bound
/// land in an overflow bucket.
pub const BUCKET_BOUNDS: [f64; 21] = [
    1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0, 3.16, 1e1, 3.16e1, 1e2, 3.16e2, 1e3, 3.16e3,
    1e4, 3.16e4, 1e5, 3.16e5, 1e6, 3.16e6, 1e7,
];

/// A fixed-bucket histogram with streaming moment/quantile sketches.
#[derive(Debug, Clone)]
pub struct Histogram {
    welford: Welford,
    min: f64,
    max: f64,
    p50: P2Quantile,
    p99: P2Quantile,
    /// `BUCKET_BOUNDS.len() + 1` cells; the last is overflow.
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            welford: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
            buckets: vec![0; BUCKET_BOUNDS.len() + 1],
        }
    }
}

impl Histogram {
    /// Adds one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.welford.record(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.p50.record(x);
        self.p99.record(x);
        let idx = BUCKET_BOUNDS.partition_point(|&bound| bound < x);
        self.buckets[idx] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Median estimate (P² sketch; exact below 6 samples).
    pub fn p50(&self) -> f64 {
        self.p50.value()
    }

    /// 99th-percentile estimate (P² sketch; exact below 6 samples).
    pub fn p99(&self) -> f64 {
        self.p99.value()
    }

    /// Occupied buckets as `(upper_bound, count)`; the overflow bucket
    /// reports `f64::INFINITY` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::INFINITY), c))
            .collect()
    }

    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(bound, count)| Json::Arr(vec![Json::Num(bound), Json::from(count)]))
            .collect();
        Json::obj()
            .field("count", self.count())
            .field("mean", self.mean())
            .field("sd", self.welford.sd())
            .field("min", self.min())
            .field("max", self.max())
            .field("p50", self.p50())
            .field("p99", self.p99())
            .field("buckets", Json::Arr(buckets))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Histogram>),
}

/// A snapshot of one metric at a point in time.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Distribution summary (boxed: a histogram is ~400 bytes of
    /// buckets and sketches, far larger than the scalar variants).
    Histogram(Box<Histogram>),
}

/// A registry of named metrics behind one mutex.
///
/// Names are dotted paths (`sweep.round_trips`, `solver.portfolio.restarts`);
/// the README's Observability section is the authoritative taxonomy.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut m = self.metrics.lock().unwrap();
        Self::counter_add_locked(&mut m, name, delta);
    }

    /// Adds several counter deltas under a single lock acquisition —
    /// the flush half of the local-accumulation convention. Zero deltas
    /// are skipped so absent events never materialize empty counters.
    pub fn counter_add_many(&self, entries: &[(&str, u64)]) {
        let mut m = self.metrics.lock().unwrap();
        for &(name, delta) in entries {
            if delta > 0 {
                Self::counter_add_locked(&mut m, name, delta);
            }
        }
    }

    fn counter_add_locked(m: &mut BTreeMap<String, Metric>, name: &str, delta: u64) {
        // Fast path avoids the `String` allocation `entry` would pay
        // even when the key already exists.
        if let Some(Metric::Counter(c)) = m.get_mut(name) {
            *c += delta;
            return;
        }
        m.insert(name.to_string(), Metric::Counter(delta));
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut m = self.metrics.lock().unwrap();
        m.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, x: f64) {
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Histogram(h)) = m.get_mut(name) {
            h.observe(x);
            return;
        }
        let mut h = Histogram::default();
        h.observe(x);
        m.insert(name.to_string(), Metric::Histogram(Box::new(h)));
    }

    /// Records a batch of observations into the named histogram under a
    /// single lock acquisition and name lookup — the flush half of the
    /// local-accumulation convention for histogram sources that fire
    /// once per hot-path iteration. An empty batch never materializes
    /// the histogram.
    pub fn observe_many(&self, name: &str, xs: &[f64]) {
        if xs.is_empty() {
            return;
        }
        let mut m = self.metrics.lock().unwrap();
        if let Some(Metric::Histogram(h)) = m.get_mut(name) {
            for &x in xs {
                h.observe(x);
            }
            return;
        }
        let mut h = Histogram::default();
        for &x in xs {
            h.observe(x);
        }
        m.insert(name.to_string(), Metric::Histogram(Box::new(h)));
    }

    /// Reads one counter's current value (0 if absent or another kind).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Reads one gauge's current value.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(h.clone()),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// The snapshot as one JSON object with `counters` / `gauges` /
    /// `hists` sections (each sorted by name).
    pub fn snapshot_json(&self) -> Json {
        let mut counters = Json::obj();
        let mut gauges = Json::obj();
        let mut hists = Json::obj();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(c) => counters = counters.field(&name, c),
                MetricValue::Gauge(g) => gauges = gauges.field(&name, g),
                MetricValue::Histogram(h) => hists = hists.field(&name, h.to_json()),
            }
        }
        Json::obj().field("counters", counters).field("gauges", gauges).field("hists", hists)
    }

    /// Drops every metric.
    pub fn reset(&self) {
        self.metrics.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.counter_value("a.b"), 5);
        assert_eq!(r.gauge_value("g"), Some(2.5));
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn batched_counter_flush_skips_zero_deltas() {
        let r = MetricsRegistry::new();
        r.counter_add_many(&[("x", 4), ("y", 0), ("z", 1)]);
        r.counter_add_many(&[("x", 1), ("z", 0)]);
        assert_eq!(r.counter_value("x"), 5);
        assert_eq!(r.counter_value("z"), 1);
        // The zero-delta name never materialized.
        assert!(r.snapshot().iter().all(|(name, _)| name != "y"));
    }

    #[test]
    fn batched_observe_matches_the_loop_form() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.5).collect();
        let batched = MetricsRegistry::new();
        batched.observe_many("h", &xs);
        batched.observe_many("h", &xs[..7]);
        let looped = MetricsRegistry::new();
        for &x in xs.iter().chain(&xs[..7]) {
            looped.observe("h", x);
        }
        let value = |r: &MetricsRegistry| match &r.snapshot()[..] {
            [(name, MetricValue::Histogram(h))] if name == "h" => {
                (h.count(), h.mean(), h.p50(), h.p99())
            }
            other => panic!("expected one histogram, got {other:?}"),
        };
        assert_eq!(value(&batched), value(&looped));
        // An empty batch never materializes the histogram.
        let empty = MetricsRegistry::new();
        empty.observe_many("h", &[]);
        assert!(empty.snapshot().is_empty());
    }

    #[test]
    fn histogram_quantiles_bracketed_by_min_max() {
        // Quantile-bound property: for any sample set, min ≤ p50 ≤ p99
        // estimates ≤ max, and the uniform case lands near truth.
        let mut h = Histogram::default();
        for i in 0..10_000u32 {
            h.observe(f64::from(i % 1000));
        }
        assert_eq!(h.count(), 10_000);
        assert!(h.min() <= h.p50() && h.p50() <= h.p99() + 1e-9);
        assert!(h.p99() <= h.max());
        assert!((h.p50() - 500.0).abs() < 25.0, "p50 {}", h.p50());
        assert!((h.p99() - 990.0).abs() < 25.0, "p99 {}", h.p99());
        assert!((h.mean() - 499.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_buckets_partition_samples() {
        let mut h = Histogram::default();
        for x in [0.5, 0.5, 5.0, 2e7] {
            h.observe(x);
        }
        h.observe(f64::NAN); // ignored
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
        // 2e7 exceeds every bound → overflow bucket with infinite bound.
        assert!(buckets.iter().any(|(b, c)| b.is_infinite() && *c == 1));
    }

    #[test]
    fn histogram_exact_at_tiny_counts() {
        let mut h = Histogram::default();
        h.observe(3.0);
        h.observe(1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 3.0);
        assert_eq!(h.p99(), 3.0);
        let empty = Histogram::default();
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
    }

    #[test]
    fn snapshot_json_is_sorted_and_sectioned() {
        let r = MetricsRegistry::new();
        r.counter_add("z.count", 1);
        r.counter_add("a.count", 2);
        r.gauge_set("mid", 0.5);
        r.observe("lat", 10.0);
        let j = r.snapshot_json();
        let text = j.encode();
        // Counters sorted a before z; all three sections present.
        assert!(text.find("a.count").unwrap() < text.find("z.count").unwrap());
        assert!(j.get("gauges").unwrap().get("mid").is_some());
        assert!(j.get("hists").unwrap().get("lat").unwrap().get("p99").is_some());
        r.reset();
        assert_eq!(r.snapshot().len(), 0);
    }
}

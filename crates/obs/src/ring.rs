//! A bounded, overwrite-oldest ring log.
//!
//! Telemetry must never grow without limit inside a long-running control
//! loop: the span ring and the online advisor's in-memory event log both
//! cap their footprint with this structure, dropping the *oldest*
//! entries once full (the tail of a run is what a debugging session
//! wants) while counting what was dropped so consumers can tell a
//! complete log from a truncated one. The full history is preserved by
//! streaming every entry to a [`crate::RunRecorder`] *before* it enters
//! the ring.

use std::collections::VecDeque;

/// A bounded log: pushes beyond the capacity evict the oldest entry.
#[derive(Debug, Clone)]
pub struct RingLog<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingLog<T> {
    /// A ring holding at most `capacity` entries. A capacity of 0 means
    /// **unbounded** (a plain log that never evicts).
    pub fn new(capacity: usize) -> Self {
        Self { buf: VecDeque::new(), capacity, dropped: 0 }
    }

    /// An unbounded log (never evicts).
    pub fn unbounded() -> Self {
        Self::new(0)
    }

    /// Appends an entry, evicting the oldest if the ring is full.
    pub fn push(&mut self, value: T) {
        if self.capacity > 0 && self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Entries currently retained (≤ capacity when bounded).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far to stay within the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained entries oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// The most recently pushed entry, if any.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Drains all retained entries oldest → newest, leaving the ring
    /// empty (the dropped counter is preserved).
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Clears retained entries and the dropped counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl<'a, T> IntoIterator for &'a RingLog<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_evicts_oldest_and_counts_drops() {
        let mut r = RingLog::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.last(), Some(&4));
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut r = RingLog::unbounded();
        for i in 0..1000 {
            r.push(i);
        }
        assert_eq!(r.len(), 1000);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drain_preserves_order_and_drop_count() {
        let mut r = RingLog::new(2);
        r.push('a');
        r.push('b');
        r.push('c');
        assert_eq!(r.drain(), vec!['b', 'c']);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        r.clear();
        assert_eq!(r.dropped(), 0);
    }
}

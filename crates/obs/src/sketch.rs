//! Streaming moment and quantile sketches.
//!
//! These accumulators originated in the measurement plane (per-link RTT
//! summaries) and moved here so the metrics registry can reuse them for
//! histogram snapshots: Welford's algorithm for mean/variance and a P²
//! estimator (Jain & Chlamtac, CACM 1985) for arbitrary quantiles, both
//! O(1) space per stream. `cloudia-measure` re-exports them under
//! `measure::stats` for its original users.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an accumulator from raw `(count, mean, m2)` parts — the
    /// inverse of [`Welford::parts`]. Columnar stores (one flat array per
    /// statistic) use this to run the exact same update arithmetic as the
    /// struct form without holding `Welford` values.
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }

    /// Raw `(count, mean, m2)` parts of the accumulator state.
    pub fn parts(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample (Bessel-corrected) variance, `m2 / (count − 1)`; 0 with
    /// fewer than 2 observations. Unbiased at the low counts a lossy
    /// link is starved down to — the population divisor systematically
    /// under-reported σ there, making prune rules and detectors
    /// overconfident exactly where data is scarcest.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// P² single-quantile estimator with five markers.
///
/// Maintains an estimate of an arbitrary quantile in O(1) space without
/// storing samples. Until five samples have arrived it falls back to exact
/// order statistics.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    inc: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            inc: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Adds one observation. Non-finite samples are rejected (dropped):
    /// a NaN folded into the marker heights would poison every later
    /// comparison, and an infinity would wedge the extreme markers.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "P2Quantile::record fed a non-finite sample: {x}");
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and adjust extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.inc[i];
        }

        // Adjust interior markers with the parabolic (P²) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            if (d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0)
                || (d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if candidate > self.heights[i - 1] && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.pos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q0, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n0, np) = (self.pos[i - 1], self.pos[i], self.pos[i + 1]);
        q0 + d / (np - nm)
            * ((n0 - nm + d) * (qp - q0) / (np - n0) + (np - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i] + d * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current quantile estimate (exact for fewer than 5 samples).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            let mut v: Vec<f64> = self.heights[..self.count.min(5)].to_vec();
            v.sort_by(f64::total_cmp);
            let idx = ((self.count as f64 * self.q).ceil() as usize).clamp(1, self.count) - 1;
            return v[idx];
        }
        self.heights[2]
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let mean = xs.iter().sum::<f64>() / 5.0;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 4.0;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_parts_round_trip_bit_exactly() {
        let mut w = Welford::new();
        let mut r = Welford::from_parts(0, 0.0, 0.0);
        for x in [1.0, 2.5, 9.0, 0.25, 7.5] {
            w.record(x);
            let (c, m, m2) = r.parts();
            let mut step = Welford::from_parts(c, m, m2);
            step.record(x);
            r = step;
        }
        assert_eq!(w.parts(), r.parts());
        assert_eq!(w.mean().to_bits(), r.mean().to_bits());
        assert_eq!(w.variance().to_bits(), r.variance().to_bits());
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p50 = P2Quantile::new(0.5);
        let mut p99 = P2Quantile::new(0.99);
        for _ in 0..100_000 {
            let x = rng.random::<f64>();
            p50.record(x);
            p99.record(x);
        }
        assert!((p50.value() - 0.5).abs() < 0.01, "p50 {}", p50.value());
        assert!((p99.value() - 0.99).abs() < 0.01, "p99 {}", p99.value());
    }

    #[test]
    fn p2_exact_for_few_samples() {
        let mut q = P2Quantile::new(0.99);
        q.record(3.0);
        q.record(1.0);
        assert_eq!(q.value(), 3.0);
        let mut qm = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            qm.record(x);
        }
        assert_eq!(qm.value(), 3.0);
    }
}

//! Lightweight span tracing.
//!
//! A span is a named wall-time interval with a handful of numeric or
//! static-string attributes, captured by an RAII guard from the
//! [`crate::span!`] macro. Completed spans land in a bounded global ring
//! (oldest evicted first) that a [`crate::RunRecorder`] can drain into
//! the trace file. When telemetry is disabled — at runtime or by
//! building without the `telemetry` feature — guards are inert: no
//! clock read, no allocation, no ring traffic.

use crate::Json;
use std::time::Instant;

/// An attribute value: a number or a static string (technique names,
/// stage labels — anything hot paths can name without allocating).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Numeric attribute.
    Num(f64),
    /// Static-string attribute.
    Text(&'static str),
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Num(x)
    }
}
impl From<u64> for AttrValue {
    fn from(x: u64) -> Self {
        AttrValue::Num(x as f64)
    }
}
impl From<u32> for AttrValue {
    fn from(x: u32) -> Self {
        AttrValue::Num(f64::from(x))
    }
}
impl From<usize> for AttrValue {
    fn from(x: usize) -> Self {
        AttrValue::Num(x as f64)
    }
}
impl From<&'static str> for AttrValue {
    fn from(s: &'static str) -> Self {
        AttrValue::Text(s)
    }
}

/// A completed span: name, wall time, attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name from the workspace taxonomy (`sweep.run`,
    /// `portfolio.worker`, `online.step`, …).
    pub name: &'static str,
    /// Wall-clock duration in milliseconds.
    pub wall_ms: f64,
    /// Attribute key/value pairs in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// The span as a JSON object (`{"name":…,"ms":…,"attrs":{…}}`).
    pub fn to_json(&self) -> Json {
        let mut attrs = Json::obj();
        for (k, v) in &self.attrs {
            attrs = match v {
                AttrValue::Num(x) => attrs.field(k, *x),
                AttrValue::Text(s) => attrs.field(k, *s),
            };
        }
        Json::obj().field("name", self.name).field("ms", self.wall_ms).field("attrs", attrs)
    }
}

/// RAII guard for an in-flight span; completes (and records) on drop.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Active>,
}

#[derive(Debug)]
struct Active {
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    /// Starts a span if telemetry is enabled; otherwise returns an
    /// inert guard. Prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        if crate::enabled() {
            SpanGuard { inner: Some(Active { name, start: Instant::now(), attrs: Vec::new() }) }
        } else {
            SpanGuard { inner: None }
        }
    }

    /// Attaches (or appends) an attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.inner {
            active.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let wall_ms = active.start.elapsed().as_secs_f64() * 1e3;
            crate::push_span(SpanRecord { name: active.name, wall_ms, attrs: active.attrs });
        }
    }
}

/// Opens a span guard: `let _s = span!("sweep.run", stage = 3usize);`
/// Attributes may be numbers or `&'static str`; more can be attached
/// later with [`SpanGuard::attr`]. The span records when the guard
/// drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::SpanGuard::enter($name);
        $(guard.attr(stringify!($key), $value);)+
        guard
    }};
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop_with_attrs() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::take_spans(); // discard anything from other tests
        {
            let mut g = crate::span!("test.span", items = 3usize, mode = "quick");
            g.attr("late", 1.5f64);
        }
        let spans = crate::take_spans();
        let s = spans.iter().rev().find(|s| s.name == "test.span").expect("span recorded");
        assert!(s.wall_ms >= 0.0);
        assert_eq!(s.attrs[0], ("items", AttrValue::Num(3.0)));
        assert_eq!(s.attrs[1], ("mode", AttrValue::Text("quick")));
        assert_eq!(s.attrs[2], ("late", AttrValue::Num(1.5)));
        let j = s.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("test.span"));
        assert_eq!(j.get("attrs").unwrap().get("mode").unwrap().as_str(), Some("quick"));
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::take_spans();
        crate::set_enabled(false);
        {
            let _g = crate::span!("test.inert", x = 1u64);
        }
        crate::set_enabled(true);
        assert!(crate::take_spans().iter().all(|s| s.name != "test.inert"));
    }
}

//! Schema-versioned JSONL run logs.
//!
//! A [`RunRecorder`] streams one JSON object per line to a sink. The
//! first line is a `meta` record carrying the schema tag; every later
//! line is `{"t":"<kind>","seq":N,"p":{…}}` with a strictly increasing
//! sequence number, so a truncated file is detectable and two runs can
//! be diffed line-by-line. The sink latches I/O errors instead of
//! panicking — telemetry must never take down the control loop it is
//! observing — and surfaces them at [`RunRecorder::finish`].
//!
//! [`parse_trace`] is the in-repo validator: CI runs it over a real
//! `--trace` output, and the round-trip proptest drives encoder and
//! parser against each other.

use crate::{Json, JsonError, MetricsRegistry, SpanRecord};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Trace schema tag written into every file's `meta` line. Bump only
/// with a migration note in the README's Observability section.
pub const TRACE_SCHEMA: &str = "cloudia.trace.v1";

/// Record kinds a v1 trace may contain.
pub const TRACE_KINDS: [&str; 7] = ["meta", "event", "epoch", "metrics", "span", "bench", "note"];

/// Streaming JSONL sink for one run.
pub struct RunRecorder {
    out: Box<dyn Write + Send>,
    seq: u64,
    error: Option<io::Error>,
}

impl fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunRecorder")
            .field("seq", &self.seq)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl RunRecorder {
    /// Records to an arbitrary writer; immediately emits the `meta`
    /// line with the schema tag plus any `extra` object fields.
    pub fn to_writer(out: Box<dyn Write + Send>, extra: Json) -> RunRecorder {
        let mut rec = RunRecorder { out, seq: 0, error: None };
        let mut meta = Json::obj().field("schema", TRACE_SCHEMA);
        if let Json::Obj(pairs) = extra {
            for (k, v) in pairs {
                meta = meta.field(&k, v);
            }
        }
        rec.record("meta", meta);
        rec
    }

    /// Records to a buffered file at `path` (created/truncated).
    pub fn to_file(path: &Path, extra: Json) -> io::Result<RunRecorder> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file)), extra))
    }

    /// Records to an in-memory buffer shared with the caller (tests,
    /// `BENCH_*.json` assembly). Returns the recorder and the buffer.
    pub fn to_vec(extra: Json) -> (RunRecorder, std::sync::Arc<std::sync::Mutex<Vec<u8>>>) {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = SharedVec(buf.clone());
        (Self::to_writer(Box::new(sink), extra), buf)
    }

    /// Appends one record line. Unknown kinds are written as-is (the
    /// validator is the gatekeeper); I/O failures latch silently.
    pub fn record(&mut self, kind: &str, payload: Json) {
        if self.error.is_some() {
            return;
        }
        let line = Json::obj().field("t", kind).field("seq", self.seq).field("p", payload);
        self.seq += 1;
        if let Err(e) = writeln!(self.out, "{}", line.encode()) {
            self.error = Some(e);
        }
    }

    /// Appends a `metrics` record with the registry's full snapshot.
    pub fn record_metrics_snapshot(&mut self, registry: &MetricsRegistry) {
        self.record("metrics", registry.snapshot_json());
    }

    /// Appends one `span` record per completed span.
    pub fn record_spans(&mut self, spans: &[SpanRecord]) {
        for span in spans {
            self.record("span", span.to_json());
        }
    }

    /// Drains the global span ring into the trace.
    pub fn flush_global_spans(&mut self) {
        let spans = crate::take_spans();
        self.record_spans(&spans);
    }

    /// Appends a free-form `note` record.
    pub fn note(&mut self, message: &str) {
        self.record("note", Json::obj().field("msg", message));
    }

    /// Records appended so far (including the meta line).
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// True if only the meta line has been written (or nothing, after
    /// an immediate I/O failure).
    pub fn is_empty(&self) -> bool {
        self.seq <= 1
    }

    /// The latched I/O error, if any write failed.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and closes the sink, surfacing any latched error.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

struct SharedVec(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedVec {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One validated trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Record kind (one of [`TRACE_KINDS`]).
    pub kind: String,
    /// Sequence number (line index from 0).
    pub seq: u64,
    /// The record payload.
    pub payload: Json,
}

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line was not valid JSON.
    Json {
        /// 0-based line number.
        line: usize,
        /// The underlying parse error.
        error: JsonError,
    },
    /// A line violated the v1 schema.
    Schema {
        /// 0-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { line, error } => write!(f, "line {line}: {error}"),
            TraceError::Schema { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses and validates a JSONL trace against schema v1: every line a
/// JSON object with `t`/`seq`/`p`, a known kind, sequence numbers
/// strictly increasing from 0, and line 0 a `meta` record tagged
/// [`TRACE_SCHEMA`].
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, TraceError> {
    let mut records = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|error| TraceError::Json { line: line_no, error })?;
        let schema = |message: &str| TraceError::Schema { line: line_no, message: message.into() };
        let kind = value
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing string field 't'"))?
            .to_string();
        if !TRACE_KINDS.contains(&kind.as_str()) {
            return Err(schema(&format!("unknown record kind {kind:?}")));
        }
        let seq = value.get("seq").and_then(Json::as_u64).ok_or_else(|| schema("missing 'seq'"))?;
        if seq != records.len() as u64 {
            return Err(schema(&format!("seq {seq} out of order (expected {})", records.len())));
        }
        let payload = value.get("p").cloned().ok_or_else(|| schema("missing payload 'p'"))?;
        if records.is_empty() {
            if kind != "meta" {
                return Err(schema("first record must be 'meta'"));
            }
            match payload.get("schema").and_then(Json::as_str) {
                Some(tag) if tag == TRACE_SCHEMA => {}
                Some(tag) => return Err(schema(&format!("unsupported schema {tag:?}"))),
                None => return Err(schema("meta record missing 'schema'")),
            }
        }
        records.push(TraceRecord { kind, seq, payload });
    }
    if records.is_empty() {
        return Err(TraceError::Schema { line: 0, message: "empty trace".into() });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_emits_validating_trace() {
        let (mut rec, buf) = RunRecorder::to_vec(Json::obj().field("run", "unit"));
        rec.record("event", Json::obj().field("kind", "Epoch").field("epoch", 0u64));
        rec.note("hello");
        let registry = MetricsRegistry::new();
        registry.counter_add("x", 7);
        rec.record_metrics_snapshot(&registry);
        assert_eq!(rec.len(), 4);
        rec.finish().unwrap();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let records = parse_trace(&text).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].kind, "meta");
        assert_eq!(records[0].payload.get("run").unwrap().as_str(), Some("unit"));
        assert_eq!(records[1].payload.get("kind").unwrap().as_str(), Some("Epoch"));
        assert_eq!(records[3].payload.get("counters").unwrap().get("x").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        // Not JSON.
        assert!(matches!(parse_trace("nope"), Err(TraceError::Json { line: 0, .. })));
        // First record not meta.
        let bad = r#"{"t":"note","seq":0,"p":{}}"#;
        assert!(matches!(parse_trace(bad), Err(TraceError::Schema { .. })));
        // Wrong schema tag.
        let bad = r#"{"t":"meta","seq":0,"p":{"schema":"other.v9"}}"#;
        assert!(matches!(parse_trace(bad), Err(TraceError::Schema { .. })));
        // Out-of-order seq.
        let bad = format!(
            "{}\n{}",
            r#"{"t":"meta","seq":0,"p":{"schema":"cloudia.trace.v1"}}"#,
            r#"{"t":"note","seq":2,"p":{}}"#
        );
        assert!(matches!(parse_trace(&bad), Err(TraceError::Schema { line: 1, .. })));
        // Unknown kind.
        let bad = format!(
            "{}\n{}",
            r#"{"t":"meta","seq":0,"p":{"schema":"cloudia.trace.v1"}}"#,
            r#"{"t":"mystery","seq":1,"p":{}}"#
        );
        assert!(matches!(parse_trace(&bad), Err(TraceError::Schema { line: 1, .. })));
        // Empty input.
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn io_errors_latch_instead_of_panicking() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut rec = RunRecorder::to_writer(Box::new(Failing), Json::obj());
        assert!(rec.error().is_some());
        rec.note("ignored"); // must not panic, must not clear the latch
        assert!(rec.error().is_some());
        assert!(rec.finish().is_err());
    }
}

//! Minimal hand-rolled JSON value, encoder, and parser.
//!
//! The trace plane needs exactly one serialization format and must not
//! pull in serde (the workspace is offline and dependency-free by
//! policy), so this module provides the smallest JSON kernel that
//! round-trips: a [`Json`] tree with order-preserving objects, an
//! encoder that writes numbers via Rust's shortest-exact `Display` for
//! `f64`, and a recursive-descent parser. Non-finite floats have no
//! JSON spelling and encode as `null`, which keeps every emitted line
//! standards-parseable.

use std::fmt;

/// A JSON value. Object keys preserve insertion order so encoded
/// records are byte-stable for the determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of NaN / ±inf numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as f64 (integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder-style. On
    /// non-objects this is a no-op returning `self` unchanged.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(pairs) = &mut self {
            let value = value.into();
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
        self
    }

    /// Looks up a field on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        encode_into(self, &mut out);
        out
    }

    /// Parses a JSON document (must consume the whole input, modulo
    /// surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(f64::from(x))
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn encode_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => encode_number(*x, out),
        Json::Str(s) => encode_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_string(k, out);
                out.push(':');
                encode_into(v, out);
            }
            out.push('}');
        }
    }
}

fn encode_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literal; null is the honest stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral values print without the ".0" Rust's Display adds,
        // matching what every other JSON emitter produces.
        let _ = fmt::write(out, format_args!("{}", x as i64));
    } else {
        // Rust's Display for f64 is shortest-exact: parsing the output
        // recovers the identical bit pattern, which the round-trip
        // proptest relies on.
        let _ = fmt::write(out, format_args!("{x}"));
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn at(pos: usize, message: &str) -> JsonError {
        JsonError { pos, message: message.to_string() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number bytes"))?;
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uXXXX low.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| JsonError::at(*pos, "bad surrogate"))?,
                                );
                            } else {
                                return Err(JsonError::at(*pos, "lone surrogate"));
                            }
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::at(*pos, "bad codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: usize) -> Result<u32, JsonError> {
    if pos + 4 > bytes.len() {
        return Err(JsonError::at(pos, "truncated \\u escape"));
    }
    let text = std::str::from_utf8(&bytes[pos..pos + 4])
        .map_err(|_| JsonError::at(pos, "invalid \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| JsonError::at(pos, "invalid \\u escape"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_compactly_with_field_order() {
        let v = Json::obj()
            .field("b", 2u64)
            .field("a", Json::Arr(vec![Json::Null, Json::Bool(true)]))
            .field("s", "hi\n");
        assert_eq!(v.encode(), r#"{"b":2,"a":[null,true],"s":"hi\n"}"#);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(-0.5).encode(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn parses_what_it_encodes() {
        let v = Json::obj()
            .field("x", 1.25f64)
            .field("y", Json::Arr(vec![Json::Num(-7.0), Json::Str("é \"q\"".into())]))
            .field("z", Json::obj().field("nested", false));
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aA\té""#).unwrap();
        assert_eq!(v, Json::Str("aA\té".to_string()));
        let surrogate = Json::parse(r#""😀""#).unwrap();
        assert_eq!(surrogate, Json::Str("😀".to_string()));
    }

    #[test]
    fn field_replaces_existing_key() {
        let v = Json::obj().field("k", 1u64).field("k", 2u64);
        assert_eq!(v.encode(), r#"{"k":2}"#);
    }
}

//! # cloudia-obs — workspace-wide telemetry plane
//!
//! The paper's argument is quantitative — probe budgets, tournament
//! costs, time-averaged deployment cost — so the reproduction needs a
//! machine-readable account of what every plane spent and where. This
//! crate is that account, in three layers:
//!
//! * a **[`MetricsRegistry`]** of named counters, gauges, and
//!   fixed-bucket [`Histogram`]s whose p50/p99 come from the same
//!   [`P2Quantile`]/[`Welford`] sketches the measurement plane uses for
//!   per-link RTTs (they live here now; `cloudia-measure` re-exports);
//! * **span tracing**: [`span!`] guards record wall time + attributes
//!   for hot paths (measurement sweep runs, portfolio workers, advisor
//!   steps)
//!   into a bounded global ring;
//! * a **[`RunRecorder`]** that streams events, epoch summaries,
//!   metrics snapshots, and spans as schema-versioned JSONL
//!   ([`TRACE_SCHEMA`]), validated by [`parse_trace`].
//!
//! ## Cost discipline
//!
//! Telemetry is always-on but must stay out of inner loops: hot code
//! accumulates plain local counters and flushes deltas to the global
//! registry at a coarse grain. Everything global is additionally
//! guarded twice — a runtime switch ([`set_enabled`], the CLI's
//! `--no-metrics`) and the `telemetry` cargo feature, without which
//! [`enabled`] is `const false` and the optimizer deletes every global
//! operation. The explicit types (registries, recorders, the [`Json`]
//! plane) work regardless of the feature; only the *global* plumbing
//! compiles out.
//!
//! This crate is deliberately dependency-free: it sits at the root of
//! the workspace graph, next to `cloudia-cost`, so every other crate
//! can instrument through it.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod json;
mod metrics;
mod record;
mod ring;
mod sketch;
mod span;

pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricValue, MetricsRegistry, BUCKET_BOUNDS};
pub use record::{parse_trace, RunRecorder, TraceError, TraceRecord, TRACE_KINDS, TRACE_SCHEMA};
pub use ring::RingLog;
pub use sketch::{P2Quantile, Welford};
pub use span::{AttrValue, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default capacity of the global span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

struct Telemetry {
    registry: MetricsRegistry,
    spans: Mutex<RingLog<SpanRecord>>,
}

fn telemetry() -> &'static Telemetry {
    static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();
    TELEMETRY.get_or_init(|| Telemetry {
        registry: MetricsRegistry::new(),
        spans: Mutex::new(RingLog::new(DEFAULT_SPAN_CAPACITY)),
    })
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// True if global telemetry is live. Without the `telemetry` feature
/// this is `const false`, so callers' instrumentation folds away.
#[cfg(feature = "telemetry")]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True if global telemetry is live. Without the `telemetry` feature
/// this is `const false`, so callers' instrumentation folds away.
#[cfg(not(feature = "telemetry"))]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Turns global telemetry on or off at runtime (the CLI's
/// `--no-metrics`). A no-op without the `telemetry` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The global metrics registry (created on first use).
pub fn metrics() -> &'static MetricsRegistry {
    &telemetry().registry
}

/// Adds `delta` to a global counter (no-op while disabled).
#[inline]
pub fn counter(name: &str, delta: u64) {
    if enabled() && delta > 0 {
        metrics().counter_add(name, delta);
    }
}

/// Adds several global counter deltas under one registry lock (no-op
/// while disabled; zero deltas are skipped). This is the flush half of
/// the local-accumulation convention — hot loops tally plain integers
/// and hand the batch here once.
#[inline]
pub fn counters(entries: &[(&str, u64)]) {
    if enabled() && entries.iter().any(|&(_, d)| d > 0) {
        metrics().counter_add_many(entries);
    }
}

/// Sets a global gauge (no-op while disabled).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        metrics().gauge_set(name, value);
    }
}

/// Records into a global histogram (no-op while disabled).
#[inline]
pub fn observe(name: &str, x: f64) {
    if enabled() {
        metrics().observe(name, x);
    }
}

/// Records a batch into a global histogram under one registry lock
/// (no-op while disabled or empty) — the histogram counterpart of
/// [`counters`]: hot loops buffer observations locally and flush the
/// batch here once.
#[inline]
pub fn observe_many(name: &str, xs: &[f64]) {
    if enabled() && !xs.is_empty() {
        metrics().observe_many(name, xs);
    }
}

/// Drains the global span ring, returning spans oldest → newest.
pub fn take_spans() -> Vec<SpanRecord> {
    telemetry().spans.lock().unwrap().drain()
}

/// Spans evicted from the global ring since the last capacity change.
pub fn spans_dropped() -> u64 {
    telemetry().spans.lock().unwrap().dropped()
}

/// Resizes the global span ring (drops retained spans; 0 = unbounded).
pub fn set_span_capacity(capacity: usize) {
    *telemetry().spans.lock().unwrap() = RingLog::new(capacity);
}

pub(crate) fn push_span(record: SpanRecord) {
    if enabled() {
        telemetry().spans.lock().unwrap().push(record);
    }
}

/// Serializes the tests that toggle the global enabled flag or drain
/// the global span ring, so they don't race under the parallel runner.
#[cfg(all(test, feature = "telemetry"))]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// These exercise the live global plane; without the feature the frees
// are no-ops by design, so there is nothing to assert.
#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn global_counters_respect_the_switch() {
        let _guard = test_lock();
        set_enabled(true);
        metrics().reset();
        counter("lib.test.counter", 2);
        set_enabled(false);
        counter("lib.test.counter", 5);
        gauge("lib.test.gauge", 9.0);
        set_enabled(true);
        assert_eq!(metrics().counter_value("lib.test.counter"), 2);
        assert_eq!(metrics().gauge_value("lib.test.gauge"), None);
    }

    #[test]
    fn span_ring_is_bounded_and_resizable() {
        let _guard = test_lock();
        set_enabled(true);
        set_span_capacity(2);
        for _ in 0..5 {
            let _s = span!("lib.test.span");
        }
        assert_eq!(take_spans().len(), 2);
        assert_eq!(spans_dropped(), 3);
        set_span_capacity(DEFAULT_SPAN_CAPACITY);
    }
}

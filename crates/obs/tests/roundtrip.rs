//! Round-trip property tests for the JSON plane and the trace format:
//! random `Json` trees encode to text that parses back to an identical
//! tree, and whole JSONL traces survive `RunRecorder` → `parse_trace`.

use cloudia_obs::{parse_trace, Json, RunRecorder};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Builds a random JSON tree. The proptest shim has no recursive
/// strategies, so the tree is grown imperatively from a drawn seed.
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 { rng.random_range(0..4) } else { rng.random_range(0..6) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.random::<bool>()),
        2 => random_num(rng),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.random_range(0..4usize);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..4usize);
            let mut obj = Json::obj();
            for i in 0..n {
                // Distinct keys: `field` replaces duplicates, which would
                // make the round-trip comparison fail spuriously.
                let key = format!("k{i}_{}", random_string(rng));
                obj = obj.field(&key, random_json(rng, depth - 1));
            }
            obj
        }
    }
}

fn random_num(rng: &mut StdRng) -> Json {
    match rng.random_range(0..4) {
        0 => Json::Num(f64::from(rng.random_range(-1_000_000i32..1_000_000))),
        1 => Json::Num(rng.random::<f64>() * 1e9 - 5e8),
        2 => Json::Num(rng.random::<f64>() * 1e-6),
        _ => Json::Num(f64::from_bits(rng.random::<u64>() >> 2)), // finite-biased bit soup
    }
}

fn random_string(rng: &mut StdRng) -> String {
    let n = rng.random_range(0..8usize);
    (0..n)
        .map(|_| {
            let c = rng.random_range(0u32..0x250);
            char::from_u32(c).unwrap_or('x')
        })
        .collect()
}

/// Non-finite numbers deliberately encode as `null`; replace them so
/// equality holds on the rest of the tree.
fn normalize(v: &Json) -> Json {
    match v {
        Json::Num(x) if !x.is_finite() => Json::Null,
        Json::Arr(items) => Json::Arr(items.iter().map(normalize).collect()),
        Json::Obj(pairs) => {
            Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), normalize(v))).collect())
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn json_encode_parse_is_identity(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_json(&mut rng, 4);
        let text = tree.encode();
        let parsed = Json::parse(&text).expect("encoder output must parse");
        prop_assert_eq!(parsed, normalize(&tree), "text: {}", text);
    }

    #[test]
    fn jsonl_traces_round_trip(seed in 0u64..u64::MAX, records in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut rec, buf) = RunRecorder::to_vec(Json::obj().field("run", "proptest"));
        let kinds = ["event", "epoch", "metrics", "span", "bench", "note"];
        let mut expected = Vec::new();
        for _ in 0..records {
            let kind = kinds[rng.random_range(0..kinds.len())];
            let payload = normalize(&random_json(&mut rng, 3));
            rec.record(kind, payload.clone());
            expected.push((kind.to_string(), payload));
        }
        rec.finish().unwrap();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let parsed = parse_trace(&text).expect("recorder output must validate");
        prop_assert_eq!(parsed.len(), expected.len() + 1);
        prop_assert_eq!(parsed[0].kind.as_str(), "meta");
        for (i, (kind, payload)) in expected.iter().enumerate() {
            prop_assert_eq!(&parsed[i + 1].kind, kind);
            prop_assert_eq!(parsed[i + 1].seq, (i + 1) as u64);
            prop_assert_eq!(&parsed[i + 1].payload, payload);
        }
    }
}

#[test]
fn same_records_yield_byte_identical_traces() {
    let build = || {
        let (mut rec, buf) = RunRecorder::to_vec(Json::obj().field("run", "det"));
        rec.record("event", Json::obj().field("kind", "Epoch").field("cost", 1.5));
        rec.note("done");
        rec.finish().unwrap();
        let bytes = buf.lock().unwrap().clone();
        bytes
    };
    assert_eq!(build(), build());
}

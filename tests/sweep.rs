//! Integration: the stage-streaming measurement plane through the
//! `cloudia` facade — driver stepping and mid-sweep pruning end to end
//! (driver → prune rule → stream → advisor), plus the differential
//! budget/quality contract on the shared recorded-trajectory scenario.

use cloudia::core::CommGraph;
use cloudia::measure::{MeasureConfig, PairwiseStats, PruneRule, Scheme, Staged};
use cloudia::netsim::{Cloud, Provider};
use cloudia::online::{
    ArmOptions, FocusScenario, MeasurementStream, OnlineAdvisor, OnlineAdvisorConfig, OnlineEvent,
    ProbePolicy, SimStream,
};
use cloudia::solver::{CandidateConfig, CandidatePruneRule};

fn network(n: usize, seed: u64) -> cloudia::netsim::Network {
    let mut cloud = Cloud::boot(Provider::ec2_like(), seed);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

#[test]
fn pruned_sweep_converges_on_the_candidate_clique() {
    // One staged sweep over a cold start, then a second sweep pruned by
    // the candidate rule built from the first sweep's statistics: the
    // second sweep only probes the union clique (plus protected pairs).
    let m = 16;
    let net = network(m, 3);
    let cfg = MeasureConfig::default();
    let scheme = Staged::new(2, 2);

    let first = scheme.run(&net, &cfg);
    let incumbent: Vec<u32> = (0..4).collect();
    let rule = CandidatePruneRule::new(4, CandidateConfig::fixed(6)).with_incumbent(&incumbent);

    let pruned = cloudia::measure::run_pruned(&scheme, &net, &cfg, first.stats.clone(), &rule);
    assert!(pruned.saved_round_trips > 0, "warm statistics must enable pruning");
    assert!(pruned.dropped_pairs > 0);
    assert!(
        pruned.report.round_trips < first.round_trips / 2,
        "pruned sweep {} vs full {}",
        pruned.report.round_trips,
        first.round_trips
    );
    // Per-link: pairs whose remaining probes were dropped gained nothing
    // over the first sweep; incumbent links always gained.
    let survivors = rule.prune(
        &first.stats,
        &(0..m as u32).flat_map(|a| (a + 1..m as u32).map(move |b| (a, b))).collect::<Vec<_>>(),
    );
    for &(a, b) in &survivors {
        let before = first.stats.link(a as usize, b as usize).count()
            + first.stats.link(b as usize, a as usize).count();
        let after = pruned.report.stats.link(a as usize, b as usize).count()
            + pruned.report.stats.link(b as usize, a as usize).count();
        assert_eq!(after, before, "condemned pair ({a},{b}) was still probed");
    }
    for w in 0..3u32 {
        let (a, b) = (incumbent[w as usize] as usize, incumbent[w as usize + 1] as usize);
        assert!(
            pruned.report.stats.link(a, b).count() > first.stats.link(a, b).count(),
            "incumbent link ({a},{b}) starved by pruning"
        );
    }
}

#[test]
fn online_loop_prunes_sweeps_and_stays_consistent() {
    // Closed loop through the facade: uniform probing with mid-sweep
    // pruning on a SimStream. Epoch 0 must be a full sweep (nothing
    // provable), later epochs must save and log it.
    let graph = CommGraph::ring(5);
    let m = 18usize;
    let net = network(m, 11);
    let config = OnlineAdvisorConfig {
        solve_seconds: 0.1,
        candidates: Some(CandidateConfig::fixed(6)),
        prune_during_sweep: true,
        prune_refresh_every: 4,
        ..Default::default()
    };
    let mut advisor = OnlineAdvisor::new(graph, m, (0..5).collect(), config);
    let mut stream = SimStream::new(net, Staged::new(3, 2), MeasureConfig::default(), 2.0, 7);
    let summaries = advisor.run(&mut stream, 6);

    let full_round_trips = (m * (m - 1) / 2 * 3 * 2) as u64;
    assert_eq!(summaries[0].round_trips, full_round_trips, "cold epoch must sweep fully");
    assert_eq!(summaries[0].saved_round_trips, 0);
    for s in &summaries[1..] {
        assert!(
            s.round_trips < full_round_trips,
            "epoch {}: nothing pruned ({} round trips)",
            s.epoch,
            s.round_trips
        );
        assert!(s.true_cost > 0.0);
    }
    assert!(advisor.sweep_saved_round_trips() > 0);
    assert!(advisor
        .events()
        .iter()
        .any(|e| matches!(e, OnlineEvent::SweepPruned { saved_round_trips, .. } if *saved_round_trips > 0)));
    assert_eq!(advisor.probe_round_trips(), summaries.iter().map(|s| s.round_trips).sum::<u64>());
}

/// A rule that condemns nothing: the pruned path must then be
/// bit-identical to the plain batch path, epoch for epoch.
struct KeepEverything;
impl PruneRule for KeepEverything {
    fn prune(&self, _: &PairwiseStats, _: &[(u32, u32)]) -> Vec<(u32, u32)> {
        Vec::new()
    }
}

#[test]
fn no_op_rule_keeps_streams_bit_identical() {
    let m = 10;
    let run = |pruned: bool| {
        let mut stream =
            SimStream::new(network(m, 5), Staged::new(2, 2), MeasureConfig::default(), 2.0, 9);
        let mut means = Vec::new();
        for _ in 0..3 {
            let e = if pruned {
                stream.next_epoch_pruned(None, &KeepEverything)
            } else {
                stream.next_epoch()
            };
            means.extend(e.deltas.iter().map(|d| d.mean));
            assert_eq!(e.saved_round_trips, 0);
        }
        means
    };
    assert_eq!(run(false), run(true));
}

/// The differential contract, driven through the public facade on the
/// shared [`FocusScenario`] (same scenario as the `ext_sweep` CI smoke):
/// mid-sweep pruning saves ≥ 30 % of uniform's probe round trips with a
/// time-averaged ground-truth cost within 2 %.
#[test]
#[cfg_attr(debug_assertions, ignore = "full differential run; slow in debug — run with --release")]
fn pruned_vs_uniform_differential_through_the_facade() {
    let scenario = FocusScenario { solve_seconds: 0.1, ..FocusScenario::default() };
    let built = scenario.build();
    let uniform = built.run_arm(ProbePolicy::Uniform);
    let pruned = built.run_arm_with(ArmOptions {
        probe_policy: ProbePolicy::Uniform,
        prune_during_sweep: true,
        spot_check_probes: 0,
        confidence: None,
        anytime: false,
    });

    assert!(
        (pruned.probes as f64) <= 0.70 * uniform.probes as f64,
        "pruning saved less than 30%: {} vs {}",
        pruned.probes,
        uniform.probes
    );
    assert!(
        pruned.avg_cost <= uniform.avg_cost * 1.02,
        "pruned cost {} more than 2% above uniform's {}",
        pruned.avg_cost,
        uniform.avg_cost
    );
    assert!(pruned.saved_round_trips > 0);
}

//! Integration: trigger-driven focused measurement through the `cloudia`
//! facade — the focused probe loop end to end (plan → focused round →
//! store → detectors → repair), plus the differential budget/quality
//! contract on the shared recorded-trajectory scenario.

use cloudia::core::CommGraph;
use cloudia::measure::{MeasureConfig, Staged};
use cloudia::netsim::{Cloud, Provider};
use cloudia::online::{FocusScenario, OnlineAdvisor, OnlineAdvisorConfig, ProbePolicy, SimStream};
use cloudia::solver::CandidateConfig;

#[test]
fn focused_loop_runs_end_to_end_with_bounded_probe_budget() {
    // A closed-loop SimStream run under the focused policy: epochs
    // proceed, the bootstrap epoch is a full sweep, later epochs probe
    // only the plan, and the advisor stays consistent throughout.
    let graph = CommGraph::ring(5);
    let m = 24usize;
    let mut cloud = Cloud::boot(Provider::ec2_like(), 11);
    let alloc = cloud.allocate(m);
    let net = cloud.network(&alloc);

    let config = OnlineAdvisorConfig {
        solve_seconds: 0.1,
        candidates: Some(CandidateConfig::fixed(6)),
        probe_policy: ProbePolicy::Focused { refresh_every: 12, max_flagged: 60 },
        ..Default::default()
    };
    let mut advisor = OnlineAdvisor::new(graph, m, (0..5).collect(), config);
    let mut stream = SimStream::new(net, Staged::new(3, 2), MeasureConfig::default(), 2.0, 3);
    let summaries = advisor.run(&mut stream, 6);

    let full_round_trips = (m * (m - 1) / 2 * 3 * 2) as u64;
    assert_eq!(summaries[0].round_trips, full_round_trips, "bootstrap epoch must sweep fully");
    for s in &summaries[1..] {
        assert!(
            s.round_trips < full_round_trips / 2,
            "epoch {}: focused round spent {} of a full sweep's {}",
            s.epoch,
            s.round_trips,
            full_round_trips
        );
        assert!(s.true_cost > 0.0);
    }
    assert_eq!(advisor.probe_round_trips(), summaries.iter().map(|s| s.round_trips).sum::<u64>());
    // The next plan covers every deployed link (incumbent is always in
    // the candidate pool).
    let plan = advisor.next_probe_plan().expect("focused policy plans probes");
    let d = advisor.deployment().clone();
    for w in 0..5usize {
        assert!(plan.contains(d[w], d[(w + 1) % 5]), "deployed link left unprobed");
    }
}

/// The differential contract, driven through the public facade on the
/// shared [`FocusScenario`] (same scenario as the `ext_focus` CI smoke
/// and `crates/online/tests/focused.rs`): ≤ 25 % of uniform's probe
/// round trips, time-averaged ground-truth cost within 2 %, and the
/// adaptive `k` shrinking on the quiet tail.
#[test]
#[cfg_attr(debug_assertions, ignore = "full differential run; slow in debug — run with --release")]
fn focused_vs_uniform_differential_through_the_facade() {
    let scenario = FocusScenario { solve_seconds: 0.1, ..FocusScenario::default() };
    let built = scenario.build();
    let uniform = built.run_arm(ProbePolicy::Uniform);
    let focused = built.run_arm(scenario.focused_policy());

    assert!(
        focused.probes as f64 <= 0.25 * uniform.probes as f64,
        "focused {} probes exceed 25% of uniform's {}",
        focused.probes,
        uniform.probes
    );
    assert!(
        focused.avg_cost <= uniform.avg_cost * 1.02,
        "focused cost {} more than 2% above uniform's {}",
        focused.avg_cost,
        uniform.avg_cost
    );
    // Adaptive k shrinks across the quiet tail.
    let peak = focused.k_trace.iter().map(|&(_, k)| k).max().unwrap();
    let last = focused.k_trace.last().unwrap().1;
    assert!(last < peak, "adaptive k never shrank (peak {peak}, final {last})");
}

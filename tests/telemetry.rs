//! Integration: the telemetry plane end to end through the `cloudia`
//! facade — trace validity against schema v1, byte-level determinism of
//! identical seeded runs, and the CLI's `--trace`/`--json` surface.

use cloudia::measure::{MeasureConfig, Staged};
use cloudia::netsim::{Cloud, Provider};
use cloudia::obs::{parse_trace, Json, RunRecorder, TRACE_KINDS, TRACE_SCHEMA};
use cloudia::online::{DetectorConfig, OnlineAdvisor, OnlineAdvisorConfig, SimStream};

fn network(n: usize, seed: u64) -> cloudia::netsim::Network {
    let mut cloud = Cloud::boot(Provider::test_quiet(), seed);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

/// One small advisor run streamed into an in-memory recorder; returns
/// the raw JSONL bytes as text.
fn traced_run(seed: u64, detector: DetectorConfig) -> String {
    let graph = cloudia::core::CommGraph::mesh_2d(2, 2);
    let net = network(6, seed);
    let config = OnlineAdvisorConfig { solve_seconds: 0.05, seed, detector, ..Default::default() };
    let mut advisor = OnlineAdvisor::new(graph, 6, (0..4).collect(), config);
    let (recorder, buf) = RunRecorder::to_vec(Json::obj().field("bin", "telemetry-test"));
    advisor.attach_recorder(recorder);
    let mut stream = SimStream::new(net, Staged::new(2, 2), MeasureConfig::default(), 2.0, seed);
    advisor.run(&mut stream, 6);
    advisor.take_recorder().expect("recorder attached").finish().unwrap();
    let bytes = buf.lock().unwrap().clone();
    String::from_utf8(bytes).unwrap()
}

/// A detector that can never fire: no re-solves, so no wall-clock
/// fields (`solve_seconds`) ever enter the trace.
fn quiet_detector() -> DetectorConfig {
    DetectorConfig { threshold: 1e18, ..Default::default() }
}

#[test]
fn run_trace_validates_against_schema_v1() {
    let text = traced_run(11, DetectorConfig::default());
    let records = parse_trace(&text).expect("trace must parse");
    assert!(!records.is_empty());
    // Line 0 is the meta record carrying the schema tag.
    assert_eq!(records[0].kind, "meta");
    assert_eq!(
        records[0].payload.get("schema").and_then(Json::as_str),
        Some(TRACE_SCHEMA),
        "trace must announce schema v1"
    );
    assert_eq!(records[0].payload.get("bin").and_then(Json::as_str), Some("telemetry-test"));
    // Sequence numbers are dense from 0, kinds all from the taxonomy.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq must be dense");
        assert!(TRACE_KINDS.contains(&r.kind.as_str()), "unknown record kind {:?}", r.kind);
        // Every payload survives an encode → parse round trip.
        let back = Json::parse(&r.payload.encode()).expect("payload re-parses");
        assert_eq!(back.encode(), r.payload.encode());
    }
    // The advisor streamed one epoch summary per epoch.
    assert_eq!(records.iter().filter(|r| r.kind == "epoch").count(), 6);
    assert!(records.iter().any(|r| r.kind == "event"));
}

#[test]
fn corrupt_trace_lines_are_rejected() {
    let text = traced_run(12, quiet_detector());
    // Truncating a line mid-record must fail, not silently parse.
    let cut = &text[..text.len() - 10];
    assert!(parse_trace(cut).is_err(), "truncated trace must be rejected");
    let mangled = text.replacen("\"t\":\"epoch\"", "\"x\":\"epoch\"", 1);
    assert!(parse_trace(&mangled).is_err(), "a record without a kind tag must be rejected");
}

#[test]
fn identical_seeded_runs_stream_identical_traces() {
    // With the detector silenced there are no re-solves, hence no
    // wall-clock fields in any record: two runs over the same seeds
    // must serialize byte for byte identically.
    let a = traced_run(7, quiet_detector());
    let b = traced_run(7, quiet_detector());
    assert_eq!(a, b, "identical seeded runs must produce identical traces");
    let records = parse_trace(&a).unwrap();
    assert_eq!(records.iter().filter(|r| r.kind == "epoch").count(), 6, "run must be non-trivial");
    // A different seed must actually change the stream (the equality
    // above is not vacuous).
    let c = traced_run(8, quiet_detector());
    assert_ne!(a, c, "different seeds must produce different traces");
}

/// End-to-end through the installed binary: `--json --trace` emits a
/// machine-readable summary on stdout and a valid schema-v1 trace.
/// Release-gated: the full pipeline is slow under the debug profile.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn cli_json_and_trace_round_trip() {
    let dir = std::env::temp_dir().join(format!("cloudia-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("run_trace.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cloudia"))
        .args([
            "--graph",
            "mesh:3x3",
            "--provider",
            "ec2",
            "--search-seconds",
            "0.2",
            "--seed",
            "5",
            "--online",
            "--epochs",
            "4",
            "--json",
            "--metrics",
            "--trace",
        ])
        .arg(&trace_path)
        .output()
        .expect("cloudia binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Stdout is exactly one JSON summary line.
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "--json must print exactly one line, got: {stdout}");
    let summary = Json::parse(lines[0]).expect("summary parses");
    assert_eq!(summary.get("schema").and_then(Json::as_str), Some("cloudia.summary.v1"));
    assert!(summary.get("optimized_cost").and_then(Json::as_f64).is_some());
    assert!(summary.get("online").is_some(), "--online must attach the online section");
    assert!(summary.get("metrics").is_some(), "--metrics must attach the snapshot");

    // The trace file is valid schema v1 and carries the run.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let records = parse_trace(&text).expect("trace parses");
    assert_eq!(records[0].kind, "meta");
    assert_eq!(records[0].payload.get("schema").and_then(Json::as_str), Some(TRACE_SCHEMA));
    assert!(records.iter().filter(|r| r.kind == "epoch").count() >= 4);
    assert!(records.iter().any(|r| r.kind == "metrics"));
    assert!(records.iter().any(|r| r.kind == "bench"));
    std::fs::remove_dir_all(&dir).ok();
}

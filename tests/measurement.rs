//! Cross-crate measurement integration tests: the schemes of §5 (plus
//! the focused scheme) over realistic networks, their relative accuracy,
//! and the metric pipeline into cost matrices.

use cloudia::core::LatencyMetric;
use cloudia::measure::error::{normalized_relative_errors, quantile};
use cloudia::measure::{
    FocusedScheme, MeasureConfig, ProbePlan, Scheme, Staged, TokenPassing, Uncoordinated,
};
use cloudia::netsim::{Cloud, Provider};

fn ec2_network(n: usize, seed: u64) -> cloudia::netsim::Network {
    let mut cloud = Cloud::boot(Provider::ec2_like(), seed);
    let alloc = cloud.allocate(n);
    cloud.network(&alloc)
}

#[test]
fn staged_is_more_accurate_than_uncoordinated() {
    // The Fig. 4 headline, as a regression test: median and p90 normalized
    // relative error of staged must beat uncoordinated.
    let n = 24;
    let net = ec2_network(n, 1);
    let cfg = MeasureConfig::default();
    let samples = 16;
    let token = TokenPassing::new(samples).run(&net, &cfg);
    let staged = Staged::new(samples / 2, 4).run(&net, &cfg);
    let uncoordinated = Uncoordinated::new(samples * (n - 1)).run(&net, &cfg);

    let base = token.mean_vector();
    let e_staged = normalized_relative_errors(&staged.mean_vector(), &base);
    let e_unc = normalized_relative_errors(&uncoordinated.mean_vector(), &base);
    assert!(
        quantile(&e_staged, 0.5) < quantile(&e_unc, 0.5),
        "median: staged {} vs uncoordinated {}",
        quantile(&e_staged, 0.5),
        quantile(&e_unc, 0.5)
    );
    assert!(
        quantile(&e_staged, 0.9) < quantile(&e_unc, 0.9),
        "p90: staged {} vs uncoordinated {}",
        quantile(&e_staged, 0.9),
        quantile(&e_unc, 0.9)
    );
}

#[test]
fn staged_is_far_faster_than_token_at_equal_coverage() {
    let net = ec2_network(30, 2);
    let cfg = MeasureConfig::default();
    let token = TokenPassing::new(4).run(&net, &cfg);
    let staged = Staged::new(4, 2).run(&net, &cfg);
    // Both observe every ordered pair.
    assert_eq!(token.stats.covered_links(), 30 * 29);
    assert_eq!(staged.stats.covered_links(), 30 * 29);
    assert!(
        staged.elapsed_ms < token.elapsed_ms / 5.0,
        "staged {} vs token {}",
        staged.elapsed_ms,
        token.elapsed_ms
    );
}

#[test]
fn all_schemes_agree_on_a_stationary_network() {
    // Cross-scheme regression: staged, token, uncoordinated, and a
    // full-plan focused run must produce mean matrices that agree within
    // tolerance on a stationary network — and they must keep agreeing
    // after a second accumulation round through `run_onto` (the online
    // advisor's incremental path), which is where a sum/count bug in any
    // scheme's accumulation would surface.
    let n = 12;
    let net = ec2_network(n, 7);
    let cfg = MeasureConfig::default();
    let samples = 24;

    let two_rounds = |scheme: &dyn Scheme| {
        let first = scheme.run(&net, &cfg);
        let second = scheme.run_onto(&net, &cfg, first.stats);
        assert_eq!(
            second.stats.total_samples(),
            2 * second.round_trips,
            "{}: accumulated totals must be exactly two rounds",
            scheme.name()
        );
        second.stats.mean_vector()
    };

    let token = two_rounds(&TokenPassing::new(samples));
    let staged = two_rounds(&Staged::new(samples / 2, 2));
    let focused = two_rounds(&FocusedScheme::new(ProbePlan::full(n), samples / 2, 2));
    let uncoordinated = two_rounds(&Uncoordinated::new(samples * (n - 1)));

    // Token passing is the interference-free baseline; staged and focused
    // schedule disjoint pairs, so all three agree tightly. Uncoordinated
    // suffers endpoint collisions (the paper's Fig. 4 tail) — a loose
    // median bound still catches an accumulation bug, which corrupts
    // every link, not just the collided few.
    for (name, vector, p50_tol) in [
        ("staged", &staged, 0.05),
        ("focused", &focused, 0.05),
        ("uncoordinated", &uncoordinated, 0.25),
    ] {
        let errs = normalized_relative_errors(vector, &token);
        let p50 = quantile(&errs, 0.5);
        assert!(p50 < p50_tol, "{name}: median deviation {p50} vs token exceeds {p50_tol}");
    }
    // Staged and a full-plan focused round use the same discipline; they
    // must agree with each other even more tightly. (The extreme tail is
    // sampling noise — the two schedules consume different jitter/spike
    // draws — so compare at p90, not the max.)
    let errs = normalized_relative_errors(&focused, &staged);
    assert!(
        quantile(&errs, 0.9) < 0.15,
        "focused vs staged diverged: p90 deviation {}",
        quantile(&errs, 0.9)
    );
}

#[test]
fn all_metrics_produce_usable_cost_matrices() {
    let net = ec2_network(12, 3);
    let report = Staged::new(10, 6).run(&net, &MeasureConfig::default());
    for metric in LatencyMetric::all() {
        let costs = metric.cost_matrix(&report.stats);
        assert_eq!(costs.len(), 12);
        let off = costs.off_diagonal();
        assert!(off.iter().all(|&c| c > 0.0 && c.is_finite()), "{}", metric.name());
    }
    // p99 >= mean+sd >= mean, link-wise.
    let mean = LatencyMetric::Mean.cost_matrix(&report.stats);
    let msd = LatencyMetric::MeanPlusSd.cost_matrix(&report.stats);
    for i in 0..12 {
        for j in 0..12 {
            if i != j {
                assert!(msd.get(i, j) >= mean.get(i, j));
            }
        }
    }
}

#[test]
fn convergence_snapshots_reduce_rmse_over_time() {
    // Fig. 5 as a regression: RMSE against the final estimate decreases.
    let net = ec2_network(16, 4);
    let cfg = MeasureConfig {
        snapshot_every_ms: Some(2_000.0),
        max_duration_ms: Some(30_000.0),
        ..MeasureConfig::default()
    };
    let report = Staged::new(10, 100_000).run(&net, &cfg);
    let truth = report.mean_vector();
    let rmses: Vec<f64> = report
        .snapshots
        .iter()
        .filter(|s| s.mean_vector.iter().all(|&m| m > 0.0))
        .map(|s| cloudia::measure::error::rmse(&s.mean_vector, &truth))
        .collect();
    assert!(rmses.len() >= 3, "need several usable snapshots, got {}", rmses.len());
    let first = rmses.first().unwrap();
    let last = rmses.last().unwrap();
    assert!(last < first, "rmse should fall: first {first}, last {last}");
}

//! Integration tests for the extension features: placement groups
//! (paper footnote 1), network drift + re-deployment (§2.2.1).

use cloudia::core::{redeploy, RedeployPolicy};
use cloudia::netsim::{Cloud, InstanceId, Provider};
use cloudia::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn placement_group_has_uniformly_low_latency() {
    let mut cloud = Cloud::boot(Provider::ec2_like(), 3);
    let scattered = cloud.allocate(20);
    let group = cloud.allocate_placement_group(20).expect("pod capacity");
    let net_s = cloud.network(&scattered);
    let net_g = cloud.network(&group);

    let worst = |net: &cloudia::netsim::Network| {
        let mut w = 0.0f64;
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j {
                    w = w.max(net.mean_rtt(InstanceId(i), InstanceId(j)));
                }
            }
        }
        w
    };
    // The contiguous group never crosses the core, so its worst link beats
    // the scattered allocation's worst link.
    assert!(
        worst(&net_g) < worst(&net_s),
        "group worst {} vs scattered worst {}",
        worst(&net_g),
        worst(&net_s)
    );
}

#[test]
fn placement_group_size_is_limited() {
    // A group larger than any pod's free capacity must be refused.
    let mut cloud = Cloud::boot(Provider::ec2_like(), 4);
    let huge = cloud.topology().config().total_slots();
    assert!(cloud.allocate_placement_group(huge).is_none());
}

#[test]
fn drift_preserves_rough_link_order() {
    // The §2.2.1 premise: drift perturbs means without completely
    // reshuffling them, so re-deployment is an optimization, not a reset.
    let mut cloud = Cloud::boot(Provider::ec2_like(), 5);
    let alloc = cloud.allocate(20);
    let net = cloud.network(&alloc);
    let mut rng = StdRng::seed_from_u64(1);
    let drifted = net.drifted(24.0, &mut rng);

    let mut before = Vec::new();
    let mut after = Vec::new();
    for i in 0..20u32 {
        for j in 0..20u32 {
            if i != j {
                before.push(net.mean_rtt(InstanceId(i), InstanceId(j)));
                after.push(drifted.mean_rtt(InstanceId(i), InstanceId(j)));
            }
        }
    }
    let corr = cloudia::measure::error::pearson(&before, &after);
    assert!(corr > 0.95, "drift destroyed link order: correlation {corr}");
}

#[test]
fn redeploy_loop_tracks_drift() {
    let graph = CommGraph::mesh_2d(3, 3);
    let mut cloud = Cloud::boot(Provider::ec2_like(), 6);
    let alloc = cloud.allocate(10);
    let mut net = cloud.network(&alloc);
    let advisor = Advisor::new(AdvisorConfig { search_time_s: 1.5, ..AdvisorConfig::fast() });

    let initial = advisor.run_on_network(&net, &graph, 1);
    let static_plan = initial.deployment.clone();
    let mut adaptive = initial.deployment.clone();

    let mut rng = StdRng::seed_from_u64(2);
    let mut static_total = 0.0;
    let mut adaptive_total = 0.0;
    for epoch in 0..4 {
        net = net.drifted(48.0, &mut rng);
        let decision =
            redeploy(&advisor, &net, &graph, &adaptive, RedeployPolicy::default(), 10 + epoch);
        if decision.migrate {
            adaptive = decision.outcome.deployment.clone();
        }
        let problem = graph.problem(net.mean_matrix());
        static_total += problem.longest_link(&static_plan);
        adaptive_total += problem.longest_link(&adaptive);
    }
    assert!(
        adaptive_total <= static_total + 1e-9,
        "adaptive {adaptive_total} worse than static {static_total}"
    );
}

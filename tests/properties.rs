//! Property-based tests (proptest) over the core data structures and
//! invariants: deployments stay injective, cost functions behave
//! monotonically, clustering is sound, estimators converge, and the
//! measurement error machinery is scale-invariant.

use cloudia::measure::error::{normalize_unit, normalized_relative_errors, quantile, rmse};
use cloudia::measure::{P2Quantile, Welford};
use cloudia::solver::{
    solve_greedy, solve_random_count, CostClusters, Costs, GreedyVariant, NodeDeployment, Objective,
};
use proptest::prelude::*;

/// Strategy: a random square cost matrix of size m with costs in [0.1, 2]
/// (the flat constructor zeroes the diagonal itself).
fn cost_matrix(m: usize) -> impl Strategy<Value = Costs> {
    proptest::collection::vec(0.1f64..2.0, m * m).prop_map(move |v| Costs::from_flat(m, v))
}

/// Strategy: a connected random path-plus-chords graph on n nodes.
fn comm_edges(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec(0..n, 0..(n as usize * 2)).prop_map(move |extra| {
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        for (k, &x) in extra.iter().enumerate() {
            let a = (k as u32) % n;
            if a != x && !edges.contains(&(a, x)) {
                edges.push((a, x));
            }
        }
        edges
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_deployments_are_always_valid(seed in 0u64..1000, n in 2usize..6, extra in 0usize..4) {
        let m = n + extra;
        let costs = Costs::from_fn(m, |_, _| 1.0);
        let p = NodeDeployment::new(n, vec![(0, 1)], costs);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let d = p.random_deployment(&mut rng);
        prop_assert!(p.is_valid(&d));
    }

    #[test]
    fn longest_link_is_max_over_edges(costs in cost_matrix(5), edges in comm_edges(4)) {
        let p = NodeDeployment::new(4, edges.clone(), costs);
        let d = p.default_deployment();
        let manual = edges
            .iter()
            .map(|&(a, b)| p.costs.get(a as usize, b as usize))
            .fold(0.0f64, f64::max);
        prop_assert!((p.longest_link(&d) - manual).abs() < 1e-12);
    }

    #[test]
    fn longest_path_dominates_longest_link_on_dags(costs in cost_matrix(6)) {
        // On a chain DAG, the longest path includes the longest link, so
        // LP cost >= LL cost.
        let edges: Vec<(u32, u32)> = (0..4).map(|i| (i, i + 1)).collect();
        let p = NodeDeployment::new(5, edges, costs);
        let d = p.default_deployment();
        prop_assert!(p.longest_path(&d) >= p.longest_link(&d) - 1e-12);
    }

    #[test]
    fn greedy_outputs_are_valid(costs in cost_matrix(7), edges in comm_edges(5)) {
        let p = NodeDeployment::new(5, edges, costs);
        for variant in [GreedyVariant::G1, GreedyVariant::G2] {
            let out = solve_greedy(&p, variant);
            prop_assert!(p.is_valid(&out.deployment));
            prop_assert!((out.cost - p.longest_link(&out.deployment)).abs() < 1e-12);
        }
    }

    #[test]
    fn random_search_cost_never_increases_with_more_samples(
        costs in cost_matrix(6),
        edges in comm_edges(4),
        seed in 0u64..100,
    ) {
        let p = NodeDeployment::new(4, edges, costs);
        let few = solve_random_count(&p, Objective::LongestLink, 50, seed);
        let many = solve_random_count(&p, Objective::LongestLink, 500, seed);
        prop_assert!(many.cost <= few.cost + 1e-12);
    }

    #[test]
    fn clustering_round_is_idempotent_and_bounded(
        values in proptest::collection::vec(0.1f64..3.0, 4..60),
        k in 1usize..10,
    ) {
        let clusters = CostClusters::compute(&values, k, 0.0);
        let (lo, hi) = values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
        for &v in &values {
            let r = clusters.round(v);
            // Rounded values stay within the data range and re-round to
            // themselves.
            prop_assert!(r >= lo - 1e-9 && r <= hi + 1e-9);
            prop_assert!((clusters.round(r) - r).abs() < 1e-9);
        }
        prop_assert!(clusters.len() <= k);
    }

    #[test]
    fn welford_matches_two_pass(values in proptest::collection::vec(-5.0f64..5.0, 1..100)) {
        let mut w = Welford::new();
        for &v in &values {
            w.record(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        // Bessel-corrected (sample) variance, matching `Welford::variance`;
        // defined as 0 for a single observation.
        let var = if values.len() < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        prop_assert!((w.mean() - mean).abs() < 1e-9);
        prop_assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn p2_stays_within_sample_range(values in proptest::collection::vec(0.0f64..10.0, 6..200)) {
        let mut q = P2Quantile::new(0.99);
        for &v in &values {
            q.record(v);
        }
        let (lo, hi) = values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
        prop_assert!(q.value() >= lo - 1e-9 && q.value() <= hi + 1e-9);
    }

    #[test]
    fn normalization_is_scale_invariant(
        values in proptest::collection::vec(0.01f64..10.0, 2..40),
        scale in 0.1f64..50.0,
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let a = normalize_unit(&values);
        let b = normalize_unit(&scaled);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let errs = normalized_relative_errors(&scaled, &values);
        prop_assert!(errs.iter().all(|&e| e < 1e-9));
    }

    #[test]
    fn rmse_is_a_metric_on_vectors(
        a in proptest::collection::vec(0.0f64..5.0, 3..20),
    ) {
        prop_assert_eq!(rmse(&a, &a), 0.0);
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        prop_assert!((rmse(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone(values in proptest::collection::vec(0.0f64..10.0, 2..50)) {
        let q25 = quantile(&values, 0.25);
        let q50 = quantile(&values, 0.5);
        let q99 = quantile(&values, 0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
    }

    #[test]
    fn cost_matrix_map_preserves_structure(costs in cost_matrix(4)) {
        let doubled = costs.map(|c| c * 2.0);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    prop_assert_eq!(doubled.get(i, j), 0.0);
                } else {
                    prop_assert!((doubled.get(i, j) - 2.0 * costs.get(i, j)).abs() < 1e-12);
                }
            }
        }
    }
}

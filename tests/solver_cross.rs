//! Cross-solver integration tests: on small instances where brute force is
//! feasible, every exact method (CP, MIP) must agree with enumeration, and
//! the heuristics must produce valid, no-worse-than-random deployments.

use cloudia::solver::{
    solve_greedy, solve_llndp_cp, solve_llndp_mip, solve_lpndp_mip, solve_portfolio,
    solve_random_count, Budget, Costs, CpConfig, GreedyVariant, MipConfig, NodeDeployment,
    Objective, PortfolioConfig,
};
fn random_problem(n: usize, m: usize, edges: Vec<(u32, u32)>, seed: u64) -> NodeDeployment {
    NodeDeployment::new(n, edges, Costs::random_uniform(m, seed))
}

fn brute_force(problem: &NodeDeployment, objective: Objective) -> f64 {
    fn rec(
        p: &NodeDeployment,
        o: Objective,
        partial: &mut Vec<u32>,
        used: &mut Vec<bool>,
        best: &mut f64,
    ) {
        if partial.len() == p.num_nodes {
            *best = best.min(p.cost(o, partial));
            return;
        }
        for j in 0..p.num_instances() {
            if !used[j] {
                used[j] = true;
                partial.push(j as u32);
                rec(p, o, partial, used, best);
                partial.pop();
                used[j] = false;
            }
        }
    }
    let mut best = f64::INFINITY;
    rec(problem, objective, &mut Vec::new(), &mut vec![false; problem.num_instances()], &mut best);
    best
}

#[test]
fn cp_and_mip_agree_with_brute_force_on_llndp() {
    for seed in 0..4 {
        let p = random_problem(4, 6, vec![(0, 1), (1, 2), (2, 3), (3, 0)], seed);
        let opt = brute_force(&p, Objective::LongestLink);
        let cp = solve_llndp_cp(
            &p,
            &CpConfig {
                clusters: None,
                quantum: 0.0,
                budget: Budget::seconds(20.0),
                ..Default::default()
            },
        );
        let mip = solve_llndp_mip(
            &p,
            &MipConfig { quantum: 0.0, budget: Budget::seconds(30.0), ..Default::default() },
        );
        assert!(cp.proven_optimal && mip.proven_optimal, "seed {seed}");
        assert!((cp.cost - opt).abs() < 1e-6, "seed {seed}: cp {} vs {opt}", cp.cost);
        assert!((mip.cost - opt).abs() < 1e-6, "seed {seed}: mip {} vs {opt}", mip.cost);
    }
}

#[test]
fn mip_agrees_with_brute_force_on_lpndp() {
    for seed in 0..3 {
        // Small diamond DAG.
        let p = random_problem(4, 5, vec![(0, 1), (0, 2), (1, 3), (2, 3)], seed + 40);
        let opt = brute_force(&p, Objective::LongestPath);
        let mip = solve_lpndp_mip(
            &p,
            &MipConfig { quantum: 0.0, budget: Budget::seconds(30.0), ..Default::default() },
        );
        assert!(mip.proven_optimal, "seed {seed}");
        assert!((mip.cost - opt).abs() < 1e-6, "seed {seed}: mip {} vs {opt}", mip.cost);
    }
}

#[test]
fn heuristics_never_beat_the_optimum_and_stay_valid() {
    for seed in 0..4 {
        let p = random_problem(5, 7, vec![(0, 1), (1, 2), (2, 3), (3, 4)], seed + 80);
        let opt = brute_force(&p, Objective::LongestLink);
        for cost in [
            solve_greedy(&p, GreedyVariant::G1).cost,
            solve_greedy(&p, GreedyVariant::G2).cost,
            solve_random_count(&p, Objective::LongestLink, 500, seed).cost,
        ] {
            assert!(cost >= opt - 1e-9, "seed {seed}: heuristic {cost} below optimum {opt}");
        }
    }
}

#[test]
fn clustering_gives_bounded_degradation() {
    // With k clusters, CP's answer can be worse than exact, but never by
    // more than the largest within-cluster spread it optimized over.
    let p = random_problem(6, 9, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 7);
    let exact = solve_llndp_cp(
        &p,
        &CpConfig {
            clusters: None,
            quantum: 0.0,
            budget: Budget::seconds(20.0),
            ..Default::default()
        },
    );
    let clustered = solve_llndp_cp(
        &p,
        &CpConfig {
            clusters: Some(8),
            quantum: 0.0,
            budget: Budget::seconds(20.0),
            ..Default::default()
        },
    );
    assert!(clustered.cost >= exact.cost - 1e-9);
    assert!(
        clustered.cost <= exact.cost * 1.5,
        "clustered {} vs exact {}",
        clustered.cost,
        exact.cost
    );
}

#[test]
fn portfolio_matches_brute_force_on_tiny_instances() {
    for seed in 0..4 {
        let p = random_problem(4, 6, vec![(0, 1), (1, 2), (2, 3), (3, 0)], seed + 400);
        let opt = brute_force(&p, Objective::LongestLink);
        let config = PortfolioConfig {
            budget: Budget::seconds(20.0),
            threads: 2,
            cp: CpConfig { clusters: None, quantum: 0.0, ..CpConfig::default() },
            ..PortfolioConfig::default()
        };
        let out = solve_portfolio(&p, Objective::LongestLink, &config);
        assert!(p.is_valid(&out.deployment), "seed {seed}");
        assert!(out.proven_optimal, "seed {seed}: portfolio did not close the instance");
        assert!((out.cost - opt).abs() < 1e-9, "seed {seed}: portfolio {} vs {opt}", out.cost);
    }
}

#[test]
fn portfolio_never_exceeds_any_standalone_member() {
    // The merged incumbent is the min over workers, so it can never be
    // worse than CP, greedy, or random run standalone with the same
    // deterministic budgets and seed.
    for seed in 0..3 {
        let p = random_problem(6, 9, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], seed + 500);
        let nodes = 5_000u64;
        let config = PortfolioConfig {
            threads: 2,
            cp: CpConfig { clusters: None, quantum: 0.0, ..CpConfig::default() },
            ..PortfolioConfig::deterministic(nodes, seed)
        };
        let portfolio = solve_portfolio(&p, Objective::LongestLink, &config);
        let cp = solve_llndp_cp(
            &p,
            &CpConfig {
                budget: Budget::nodes(nodes),
                clusters: None,
                quantum: 0.0,
                seed,
                ..CpConfig::default()
            },
        );
        let standalone_min = [
            cp.cost,
            solve_greedy(&p, GreedyVariant::G1).cost,
            solve_greedy(&p, GreedyVariant::G2).cost,
            solve_random_count(&p, Objective::LongestLink, nodes, seed).cost,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        assert!(
            portfolio.cost <= standalone_min + 1e-9,
            "seed {seed}: portfolio {} vs best standalone {standalone_min}",
            portfolio.cost
        );
    }
}

#[test]
fn r2_matches_paper_relationship_to_exact_methods() {
    // Fig. 14/15 shape: R2 lands close to (within a few tens of percent of)
    // the exact solver on LLNDP, and G1 is the weakest method.
    let mut g1_total = 0.0;
    let mut r1_total = 0.0;
    let mut cp_total = 0.0;
    for seed in 0..6 {
        let mesh: Vec<(u32, u32)> = {
            let mut e = Vec::new();
            for r in 0..3u32 {
                for c in 0..4u32 {
                    let v = r * 4 + c;
                    if c + 1 < 4 {
                        e.push((v, v + 1));
                        e.push((v + 1, v));
                    }
                    if r + 1 < 3 {
                        e.push((v, v + 4));
                        e.push((v + 4, v));
                    }
                }
            }
            e
        };
        let p = random_problem(12, 14, mesh, seed + 200);
        g1_total += solve_greedy(&p, GreedyVariant::G1).cost;
        r1_total += solve_random_count(&p, Objective::LongestLink, 1000, seed).cost;
        cp_total +=
            solve_llndp_cp(&p, &CpConfig { budget: Budget::seconds(3.0), ..Default::default() })
                .cost;
    }
    assert!(cp_total <= r1_total, "cp {cp_total} should beat r1 {r1_total}");
    assert!(cp_total <= g1_total, "cp {cp_total} should beat g1 {g1_total}");
}

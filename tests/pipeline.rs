//! End-to-end integration tests of the full ClouDiA pipeline across
//! crates: netsim allocation -> staged measurement -> solver search ->
//! deployment evaluation -> workload execution.

use cloudia::core::advisor::MeasurementPlan;
use cloudia::measure::MeasureConfig;
use cloudia::netsim::{Cloud, Provider};
use cloudia::prelude::*;
use cloudia::workloads::{AggregationQuery, BehavioralSim, KvStore, Workload};

#[test]
fn advisor_improves_longest_link_on_every_provider() {
    for provider in [Provider::ec2_like(), Provider::gce_like(), Provider::rackspace_like()] {
        let name = provider.kind.name();
        let graph = CommGraph::mesh_2d(4, 4);
        let advisor = Advisor::new(AdvisorConfig { search_time_s: 2.0, ..AdvisorConfig::fast() });
        let outcome = advisor.run(provider, &graph, 5);
        assert!(
            outcome.optimized_cost <= outcome.default_cost + 1e-9,
            "{name}: optimized {} > default {}",
            outcome.optimized_cost,
            outcome.default_cost
        );
        // On heterogeneous clouds, the improvement should be material.
        assert!(
            outcome.improvement() > 0.05,
            "{name}: improvement only {:.1} %",
            outcome.improvement() * 100.0
        );
    }
}

#[test]
fn advisor_longest_path_pipeline_improves() {
    let graph = CommGraph::aggregation_tree(3, 2);
    let advisor = Advisor::new(AdvisorConfig {
        objective: Objective::LongestPath,
        search_time_s: 4.0,
        ..AdvisorConfig::fast()
    });
    let outcome = advisor.run(Provider::ec2_like(), &graph, 8);
    assert!(outcome.optimized_cost <= outcome.default_cost + 1e-9);
}

#[test]
fn optimized_deployment_speeds_up_all_three_workloads() {
    // The headline claim (paper Fig. 12): running the applications under
    // the advised deployment beats the default deployment.
    let workloads: Vec<(Box<dyn Workload>, Objective)> = vec![
        (
            Box::new(BehavioralSim { sample_ticks: 300, ..BehavioralSim::new(4, 5) }),
            Objective::LongestLink,
        ),
        (
            Box::new(AggregationQuery { queries: 300, ..AggregationQuery::new(4, 2) }),
            Objective::LongestPath,
        ),
        (Box::new(KvStore { queries: 800, ..KvStore::new(5, 15) }), Objective::LongestLink),
    ];
    for (w, objective) in workloads {
        let graph = w.graph();
        let n = graph.num_nodes();
        let mut cloud = Cloud::boot(Provider::ec2_like(), 99);
        let allocation = cloud.allocate(n + n / 10);
        let network = cloud.network(&allocation);
        let advisor =
            Advisor::new(AdvisorConfig { objective, search_time_s: 4.0, ..AdvisorConfig::fast() });
        let outcome = advisor.run_on_network(&network, &graph, 2);

        let default: Vec<u32> = (0..n as u32).collect();
        let t_default = w.run(&network, &default, 3).value_ms;
        let t_opt = w.run(&network, &outcome.deployment, 3).value_ms;
        assert!(
            t_opt < t_default,
            "{}: optimized {t_opt} not faster than default {t_default}",
            w.name()
        );
    }
}

#[test]
fn termination_keeps_only_planned_instances() {
    let graph = CommGraph::ring(8);
    let advisor = Advisor::new(AdvisorConfig { over_allocation: 0.25, ..AdvisorConfig::fast() });
    let outcome = advisor.run(Provider::ec2_like(), &graph, 4);
    assert_eq!(outcome.deployment.len(), 8);
    assert_eq!(outcome.terminated.len(), 2);
    let used: std::collections::HashSet<u32> = outcome.deployment.iter().copied().collect();
    assert_eq!(used.len(), 8, "deployment must be injective");
    for t in &outcome.terminated {
        assert!(!used.contains(&t.0));
    }
}

#[test]
fn measured_costs_track_ground_truth_ordering() {
    // Staged measurement must put links in roughly the right order —
    // otherwise the whole advisor would optimize noise.
    let mut cloud = Cloud::boot(Provider::ec2_like(), 6);
    let alloc = cloud.allocate(15);
    let net = cloud.network(&alloc);
    // Half the paper's per-pair depth (Ks = 10): enough samples that the
    // rank correlation reflects the estimator, not one jitter roll.
    let measurement = MeasurementPlan { ks: 5, sweeps: 4, config: MeasureConfig::default() };
    let advisor = Advisor::new(AdvisorConfig { measurement, ..AdvisorConfig::fast() });
    let report = advisor.measure(&net, 0);

    let mut truth = Vec::new();
    let mut measured = Vec::new();
    for i in 0..15usize {
        for j in 0..15usize {
            if i != j {
                truth.push(net.mean_rtt(
                    cloudia::netsim::InstanceId::from_index(i),
                    cloudia::netsim::InstanceId::from_index(j),
                ));
                measured.push(report.stats.link(i, j).mean());
            }
        }
    }
    let corr = cloudia::measure::error::pearson(&truth, &measured);
    assert!(corr > 0.8, "measured/truth correlation only {corr}");
}

//! Offline shim for the `parking_lot` crate.
//!
//! Provides `Mutex`/`RwLock` with `parking_lot`'s ergonomics (no lock
//! poisoning, `lock()` returns the guard directly) on top of
//! `std::sync`. The build environment has no registry access, so the real
//! crate cannot be fetched; the std-backed versions are slightly slower
//! under contention but semantically equivalent for this workspace.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_usable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

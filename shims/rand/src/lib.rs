//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace provides the subset of the `rand 0.9` API that the ClouDiA
//! crates actually use, backed by a xoshiro256++ generator:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for `f64`/`f32`/`u64`/`u32`/`bool`;
//! * [`Rng::random_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges;
//! * [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`].
//!
//! Streams are deterministic per seed (which is all the workspace relies
//! on) but do **not** bit-match the real `rand` crate.

#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the conventional way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a generator's full range (or `[0, 1)` for
/// floats).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply mapping (Lemire); bias is negligible for
                // the small ranges the workspace draws from.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait (merged `RngCore` + `Rng` surface).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` (full range for integers, `[0, 1)` for
    /// floats).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }

    #[test]
    fn choose_covers_elements() {
        use seq::IndexedRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let total: f64 = (0..100_000).map(|_| rng.random::<f64>()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter`). It runs each benchmark long enough
//! for a stable mean (or exactly once with `--test`, which is what
//! `cargo test` passes to `harness = false` bench targets) and prints
//! `name ... mean time/iter` lines instead of criterion's full statistics.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measures closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Option<(Duration, u64)>,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, first warming up and then sampling until the measurement
    /// window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((Duration::from_nanos(1), 1));
            return;
        }
        // Warm-up: at least one call, up to ~100 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters == 0
            || (warm_start.elapsed() < Duration::from_millis(100) && warm_iters < 1000)
        {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        // Measurement: target ~500 ms, at least 5 iterations.
        let target = Duration::from_millis(500);
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness = false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. In test mode each benchmark runs
        // exactly once, as real criterion does.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) {
        let mut b = Bencher { result: None, test_mode: self.test_mode };
        body(&mut b);
        match b.result {
            Some((total, iters)) if !self.test_mode => {
                let per = total / iters as u32;
                println!("{name:<50} {:>12}/iter ({iters} iters)", fmt_duration(per));
            }
            _ => println!("{name:<50} ok (test mode)"),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        self.run_one(name, body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// Identifies a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, body: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.run_one(&full, body);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| body(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("7"), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter("3x4").id, "3x4");
        assert_eq!(BenchmarkId::new("f", 9).id, "f/9");
    }
}

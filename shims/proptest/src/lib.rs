//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the proptest API its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges and tuples;
//! * [`collection::vec`] with fixed or ranged lengths;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic-based — no shrinking).
//!
//! Each test runs `ProptestConfig::cases` deterministic cases seeded per
//! case index, so failures are reproducible run-to-run. There is no input
//! shrinking: a failing case reports the case index instead.

#![warn(missing_docs)]

pub use rand;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of random test inputs.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `usize` range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// A strategy for `Vec<S::Value>` with the given length (or length
    /// range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            // The `#[test]` attribute arrives via `$meta` (proptest bodies
            // spell it out), so it is forwarded rather than re-emitted.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    // Seed per case (offset by the test name hash so sibling
                    // tests see different streams).
                    let __seed = {
                        let name = stringify!($name);
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for b in name.bytes() {
                            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                        }
                        h ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    };
                    let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let run = || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (seed {:#x})",
                            __case + 1, config.cases, stringify!($name), __seed
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Commonly used items.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u64..5, 3), w in collection::vec(0u64..5, 2..6)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(v.iter().chain(&w).all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_map_compose(p in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&p));
        }
    }

    #[test]
    fn default_config_runs() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}

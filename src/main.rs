//! `cloudia` — command-line deployment advisor.
//!
//! Runs the full ClouDiA pipeline against a simulated public-cloud region
//! and prints the advised deployment plan.
//!
//! ```sh
//! cloudia --graph mesh:5x5 --objective longest-link --provider ec2 \
//!         --over-allocation 0.1 --search-seconds 5 --seed 42
//! cloudia --graph tree:6x2 --objective longest-path
//! cloudia --graph bipartite:8x28 --metric mean+sd
//! cloudia --graph mesh:6x6 --search portfolio --threads 4
//! cloudia --graph ring:8 --online --epochs 24 --epoch-hours 4 --migration-budget 2
//! ```

use cloudia::core::LatencyMetric;
use cloudia::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: cloudia [--graph mesh:RxC|mesh3d:XxYxZ|tree:FxL|bipartite:FxS|ring:N|star:N]
               [--objective longest-link|longest-path]
               [--provider ec2|gce|rackspace]
               [--metric mean|mean+sd|p99]
               [--over-allocation FRACTION]   (default 0.1)
               [--search recommended|cp|mip|greedy-g1|greedy-g2|random-r1|random-r2|portfolio]
               [--threads N]                  (portfolio/r2 workers; 0 = all cores)
               [--candidates auto|adaptive|K] (candidate-pruned search: K instances per node;
                                               auto = max(4n, 48); adaptive = escalation-driven
                                               pool sizing; omit for the dense search)
               [--search-seconds S]           (default 5)
               [--stage-workers N]            (worker threads per measurement stage; 0 = auto:
                                               serial for small stages, all cores for wide ones.
                                               Deterministic — every value gives byte-identical
                                               sweeps)
               [--sketch-spill H]             (drop per-link p99 sketches on links quiet for H
                                               consecutive stages; freed slots are recycled, so
                                               long sweeps stop growing the sketch table.
                                               0 = keep every sketch forever, the default)
               [--seed N]                     (default 42)
               [--online]                     (run the continuous advisor after deploying)
               [--epochs N]                   (online epochs, default 24)
               [--epoch-hours H]              (simulated hours per epoch, default 4)
               [--migration-budget K]         (max nodes moved per re-solve, default 3)
               [--probe uniform|focused]      (online probe policy: full sweeps, or
                                               trigger-driven focused rounds; default uniform)
               [--prune-during-sweep]         (online: stage-stream each measurement sweep and
                                               drop pairs mid-sweep once their measured quantiles
                                               prove them outside every candidate pool)
               [--confidence C]               (online: error-bounded mode — per-link confidence
                                               intervals at level C; pruning, drift alarms and
                                               repair acceptance demand interval separation
                                               instead of point estimates)
               [--anytime]                    (online: with --confidence and --prune-during-sweep,
                                               end each sweep early once every remaining
                                               prune/pool decision is CI-stable)
               [--spot-check K]               (online: confirm a degradation alarm with K fresh
                                               single-link probes before repairing; 0 = off)
               [--loss P]                     (online: per-link per-direction drop probability,
                                               drifting around P; 0 = lossless, default 0)
               [--retries N]                  (online: retransmit budget per probe pair per
                                               stage under loss, default 3)
               [--blackout E]                 (online: force the first deployed instance dark
                                               from epoch E onward)
               [--loss-blind]                 (online: disable dark-link triage, evacuation and
                                               loss-priced search costs — the baseline arm)
               [--trace PATH]                 (write a schema-versioned JSONL run trace: every
                                               online event and epoch summary as it happens,
                                               plus a final metrics snapshot and span log)
               [--metrics]                    (print the final metrics-registry snapshot)
               [--no-metrics]                 (disable telemetry collection at runtime)
               [--json]                       (suppress human output; print one JSON summary
                                               object on stdout instead)"
    );
    std::process::exit(2);
}

fn parse_dims<const K: usize>(spec: &str) -> [usize; K] {
    let parts: Vec<usize> = spec.split('x').filter_map(|p| p.parse().ok()).collect();
    if parts.len() != K {
        eprintln!("bad dimension spec `{spec}` (expected {K} `x`-separated integers)");
        usage();
    }
    let mut out = [0; K];
    out.copy_from_slice(&parts);
    out
}

fn parse_graph(spec: &str) -> CommGraph {
    match spec.split_once(':') {
        Some(("mesh", dims)) => {
            let [r, c] = parse_dims::<2>(dims);
            CommGraph::mesh_2d(r, c)
        }
        Some(("mesh3d", dims)) => {
            let [x, y, z] = parse_dims::<3>(dims);
            CommGraph::mesh_3d(x, y, z)
        }
        Some(("tree", dims)) => {
            let [f, l] = parse_dims::<2>(dims);
            CommGraph::aggregation_tree(f, l)
        }
        Some(("bipartite", dims)) => {
            let [f, s] = parse_dims::<2>(dims);
            CommGraph::bipartite(f, s)
        }
        Some(("ring", dims)) => CommGraph::ring(parse_dims::<1>(dims)[0]),
        Some(("star", dims)) => CommGraph::star(parse_dims::<1>(dims)[0]),
        _ => {
            eprintln!("unknown graph spec `{spec}`");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut graph_spec = "mesh:5x5".to_string();
    let mut objective = Objective::LongestLink;
    let mut provider_name = "ec2".to_string();
    let mut metric = LatencyMetric::Mean;
    let mut over_allocation = 0.1f64;
    let mut search_seconds = 5.0f64;
    let mut seed = 42u64;
    let mut search_name = "recommended".to_string();
    let mut threads: Option<usize> = None;
    let mut candidates: Option<cloudia::solver::CandidateConfig> = None;
    let mut online = false;
    let mut epochs = 24u64;
    let mut epoch_hours = 4.0f64;
    let mut migration_budget = 3usize;
    let mut probe_focused = false;
    let mut prune_during_sweep = false;
    let mut confidence: Option<f64> = None;
    let mut anytime = false;
    let mut spot_check = 0usize;
    let mut loss = 0.0f64;
    let mut retries = 3u32;
    let mut blackout: Option<u64> = None;
    let mut loss_blind = false;
    let mut trace_path: Option<String> = None;
    let mut print_metrics = false;
    let mut json = false;
    let mut stage_workers = 0usize;
    let mut sketch_spill: Option<u64> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--graph" => graph_spec = value(),
            "--objective" => {
                objective = match value().as_str() {
                    "longest-link" | "ll" => Objective::LongestLink,
                    "longest-path" | "lp" => Objective::LongestPath,
                    other => {
                        eprintln!("unknown objective `{other}`");
                        usage();
                    }
                }
            }
            "--provider" => provider_name = value(),
            "--metric" => {
                metric = match value().as_str() {
                    "mean" => LatencyMetric::Mean,
                    "mean+sd" => LatencyMetric::MeanPlusSd,
                    "p99" => LatencyMetric::P99,
                    other => {
                        eprintln!("unknown metric `{other}`");
                        usage();
                    }
                }
            }
            "--search" => search_name = value(),
            "--threads" => {
                threads = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    usage();
                }))
            }
            "--candidates" => {
                let v = value();
                candidates = Some(match v.as_str() {
                    "auto" => cloudia::solver::CandidateConfig::fixed(0),
                    "adaptive" => cloudia::solver::CandidateConfig::adaptive(
                        cloudia::solver::AdaptivePoolConfig::default(),
                    ),
                    _ => cloudia::solver::CandidateConfig::fixed(v.parse().unwrap_or_else(|_| {
                        eprintln!(
                            "bad candidate count `{v}` (expected `auto`, `adaptive`, or an integer)"
                        );
                        usage();
                    })),
                });
            }
            "--over-allocation" => {
                over_allocation = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad fraction");
                    usage();
                })
            }
            "--search-seconds" => {
                search_seconds = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad seconds");
                    usage();
                })
            }
            "--seed" => {
                seed = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad seed");
                    usage();
                })
            }
            "--stage-workers" => {
                stage_workers = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad stage worker count");
                    usage();
                })
            }
            "--sketch-spill" => {
                let h: u64 = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad sketch-spill horizon");
                    usage();
                });
                sketch_spill = (h > 0).then_some(h);
            }
            "--online" => online = true,
            "--epochs" => {
                epochs = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad epoch count");
                    usage();
                })
            }
            "--epoch-hours" => {
                epoch_hours = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad epoch hours");
                    usage();
                })
            }
            "--migration-budget" => {
                migration_budget = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad migration budget");
                    usage();
                })
            }
            "--probe" => {
                probe_focused = match value().as_str() {
                    "uniform" => false,
                    "focused" => true,
                    other => {
                        eprintln!("unknown probe policy `{other}` (expected uniform or focused)");
                        usage();
                    }
                }
            }
            "--prune-during-sweep" => prune_during_sweep = true,
            "--confidence" => {
                let c: f64 = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad confidence level");
                    usage();
                });
                if c <= 0.0 || c >= 1.0 {
                    eprintln!("confidence must be in (0, 1)");
                    usage();
                }
                confidence = Some(c);
            }
            "--anytime" => anytime = true,
            "--spot-check" => {
                spot_check = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad spot-check probe count");
                    usage();
                })
            }
            "--loss" => {
                loss = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad loss probability");
                    usage();
                });
                if !(0.0..1.0).contains(&loss) {
                    eprintln!("loss probability must be in [0, 1)");
                    usage();
                }
            }
            "--retries" => {
                retries = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad retry budget");
                    usage();
                })
            }
            "--blackout" => {
                blackout = Some(value().parse().unwrap_or_else(|_| {
                    eprintln!("bad blackout epoch");
                    usage();
                }))
            }
            "--loss-blind" => loss_blind = true,
            "--trace" => trace_path = Some(value()),
            "--metrics" => print_metrics = true,
            "--no-metrics" => cloudia::obs::set_enabled(false),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let provider = match provider_name.as_str() {
        "ec2" => Provider::ec2_like(),
        "gce" => Provider::gce_like(),
        "rackspace" => Provider::rackspace_like(),
        other => {
            eprintln!("unknown provider `{other}`");
            usage();
        }
    };

    let graph = parse_graph(&graph_spec);
    if objective == Objective::LongestPath && !graph.is_dag() {
        eprintln!("graph `{graph_spec}` is not acyclic; longest-path needs a DAG (try tree:FxL)");
        std::process::exit(1);
    }

    // Explicit strategy selection; "recommended" keeps the paper's choice
    // per objective (single-threaded unless --threads changes it).
    use cloudia::solver::{Budget, CpConfig, GreedyVariant, MipConfig, PortfolioConfig};
    let strategy = match search_name.as_str() {
        "recommended" => None,
        "cp" => Some(SearchStrategy::Cp(CpConfig {
            budget: Budget::seconds(search_seconds),
            seed,
            ..CpConfig::default()
        })),
        "mip" => Some(SearchStrategy::Mip(MipConfig {
            budget: Budget::seconds(search_seconds),
            seed,
            ..MipConfig::default()
        })),
        "greedy-g1" => Some(SearchStrategy::Greedy(GreedyVariant::G1)),
        "greedy-g2" => Some(SearchStrategy::Greedy(GreedyVariant::G2)),
        "random-r1" => Some(SearchStrategy::RandomCount { count: 1000, seed }),
        "random-r2" => Some(SearchStrategy::RandomBudget {
            budget: Budget::seconds(search_seconds),
            threads: threads.unwrap_or(0),
            seed,
        }),
        "portfolio" => Some(SearchStrategy::Portfolio(PortfolioConfig {
            budget: Budget::seconds(search_seconds),
            threads: threads.unwrap_or(0),
            seed,
            ..PortfolioConfig::default()
        })),
        other => {
            eprintln!("unknown search strategy `{other}`");
            usage();
        }
    };

    let provider_label = provider.kind.name();
    // One JSONL trace per run: the meta line pins the schema and the
    // run's identity; online events stream into it as they happen, and
    // the final metrics snapshot + span log land before it closes.
    let mut recorder = trace_path.as_ref().map(|path| {
        let meta = cloudia::obs::Json::obj()
            .field("bin", "cloudia")
            .field("graph", graph_spec.as_str())
            .field("objective", objective.name())
            .field("provider", provider_label)
            .field("seed", seed);
        cloudia::obs::RunRecorder::to_file(std::path::Path::new(path), meta).unwrap_or_else(|e| {
            eprintln!("cannot open trace file `{path}`: {e}");
            std::process::exit(1);
        })
    });

    if !json {
        println!(
            "ClouDiA: {} nodes, {} edges | objective {} | {} | metric {} | +{:.0}% instances | search {}",
            graph.num_nodes(),
            graph.num_edges(),
            objective.name(),
            provider_label,
            metric.name(),
            over_allocation * 100.0,
            match &strategy {
                Some(s) => s.name(),
                // `--threads N` silently upgrades the recommended strategy to
                // the portfolio inside the advisor; reflect that here.
                None if threads.is_some_and(|t| t != 1) => "recommended (portfolio)",
                None => "recommended",
            },
        );
    }

    let mut advisor_cfg = cloudia::core::AdvisorConfig {
        objective,
        metric,
        over_allocation,
        strategy,
        search_time_s: search_seconds,
        // `--threads N` with the recommended strategy upgrades it to the
        // portfolio; without the flag the paper's single-threaded choice
        // stands.
        search_threads: threads.unwrap_or(1),
        candidates,
        ..cloudia::core::AdvisorConfig::fast()
    };
    advisor_cfg.measurement.config.stage_workers = stage_workers;
    advisor_cfg.measurement.config.sketch_spill_horizon = sketch_spill;
    let advisor = Advisor::new(advisor_cfg);
    let outcome = match advisor.try_run(provider, &graph, seed) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("measurement produced unusable cost data: {e}");
            std::process::exit(1);
        }
    };

    if !json {
        println!(
            "measured {} round trips in {:.0} simulated ms",
            outcome.measurement_round_trips, outcome.measurement_ms
        );
        println!(
            "search: {} improvements, {} nodes explored, optimal proven: {}",
            outcome.search.curve.len(),
            outcome.search.explored,
            outcome.search.proven_optimal
        );
        println!("deployment plan (node -> instance):");
        for (node, inst) in outcome.deployment.iter().enumerate() {
            print!("  {node}->{inst}");
            if (node + 1) % 8 == 0 {
                println!();
            }
        }
        println!();
        println!("terminated {} extra instances", outcome.terminated.len());
        println!(
            "{}: default {:.3} ms -> optimized {:.3} ms ({:.1}% reduction)",
            objective.name(),
            outcome.default_cost,
            outcome.optimized_cost,
            outcome.improvement() * 100.0
        );
    }

    // The machine-readable run summary `--json` prints and `--trace`
    // embeds as the trace's `bench` record.
    let deployment: Vec<cloudia::obs::Json> =
        outcome.deployment.iter().map(|&i| cloudia::obs::Json::from(i)).collect();
    let mut summary = cloudia::obs::Json::obj()
        .field("schema", "cloudia.summary.v1")
        .field("graph", graph_spec.as_str())
        .field("objective", objective.name())
        .field("provider", provider_label)
        .field("metric", metric.name())
        .field("seed", seed)
        .field("nodes", graph.num_nodes())
        .field("instances", outcome.network.len())
        .field("measurement_round_trips", outcome.measurement_round_trips)
        .field("measurement_ms", outcome.measurement_ms)
        .field("search_explored", outcome.search.explored)
        .field("search_improvements", outcome.search.curve.len())
        .field("proven_optimal", outcome.search.proven_optimal)
        .field("terminated", outcome.terminated.len())
        .field("default_cost", outcome.default_cost)
        .field("optimized_cost", outcome.optimized_cost)
        .field("improvement", outcome.improvement())
        .field("deployment", deployment);

    if online {
        let (online_summary, rec) = run_online(
            &graph,
            &outcome,
            objective,
            epochs,
            epoch_hours,
            migration_budget,
            probe_focused,
            prune_during_sweep,
            confidence,
            anytime,
            spot_check,
            candidates,
            seed,
            LossOptions { loss, retries, blackout, blind: loss_blind },
            SweepOptions { stage_workers, sketch_spill },
            json,
            recorder,
        );
        recorder = rec;
        summary = summary.field("online", online_summary);
    }

    let metrics_snapshot = cloudia::obs::metrics().snapshot_json();
    if let Some(mut rec) = recorder {
        rec.record("bench", summary.clone());
        rec.record_metrics_snapshot(cloudia::obs::metrics());
        rec.flush_global_spans();
        if let Err(e) = rec.finish() {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
    }
    if json {
        if print_metrics {
            summary = summary.field("metrics", metrics_snapshot);
        }
        println!("{}", summary.encode());
    } else if print_metrics {
        println!("metrics: {}", metrics_snapshot.encode());
    }
}

/// Loss-plane knobs for the online run; all inert at `loss == 0` with no
/// blackout, where the stream is bit-identical to the lossless one.
struct LossOptions {
    loss: f64,
    retries: u32,
    blackout: Option<u64>,
    blind: bool,
}

/// Sweep execution knobs shared by every measurement epoch: worker
/// fan-out per stage (deterministic at any value) and the sketch-spill
/// horizon (`None` keeps every per-link p99 sketch forever).
struct SweepOptions {
    stage_workers: usize,
    sketch_spill: Option<u64>,
}

/// Drives the continuous advisor over the deployed plan: the
/// over-allocated pool is kept as warm spares, the network drifts
/// `epoch_hours` between measurement epochs, and every trigger runs a
/// budgeted incremental re-solve. Returns the machine-readable run
/// summary and hands back the trace recorder (if one was attached) so
/// the caller can close it.
#[allow(clippy::too_many_arguments)]
fn run_online(
    graph: &CommGraph,
    outcome: &cloudia::core::AdvisorOutcome,
    objective: Objective,
    epochs: u64,
    epoch_hours: f64,
    migration_budget: usize,
    probe_focused: bool,
    prune_during_sweep: bool,
    confidence: Option<f64>,
    anytime: bool,
    spot_check: usize,
    candidates: Option<cloudia::solver::CandidateConfig>,
    seed: u64,
    loss_opts: LossOptions,
    sweep_opts: SweepOptions,
    json: bool,
    recorder: Option<cloudia::obs::RunRecorder>,
) -> (cloudia::obs::Json, Option<cloudia::obs::RunRecorder>) {
    use cloudia::measure::{MeasureConfig, Staged};
    use cloudia::netsim::FaultParams;
    use cloudia::online::{
        OnlineAdvisor, OnlineAdvisorConfig, OnlineEvent, ProbePolicy, SimStream,
    };

    // Human narration is silenced under `--json`; the returned summary
    // object carries the same facts instead.
    macro_rules! human {
        ($($t:tt)*) => { if !json { println!($($t)*) } };
    }

    let lossy = loss_opts.loss > 0.0 || loss_opts.blackout.is_some();
    human!();
    human!(
        "online advisor: {epochs} epochs x {epoch_hours} h, migration budget {migration_budget}, \
         {} instances kept as spares, {} probing{}{}{}{}",
        outcome.network.len() - graph.num_nodes(),
        if probe_focused { "focused" } else { "uniform" },
        if prune_during_sweep { ", mid-sweep pruning" } else { "" },
        match confidence {
            Some(c) =>
                format!(", {:.0}% CIs{}", c * 100.0, if anytime { " + anytime stop" } else { "" }),
            None => String::new(),
        },
        if spot_check > 0 { ", spot-check confirmation" } else { "" },
        if lossy {
            format!(
                ", {:.1}% drifting loss ({} retries{})",
                loss_opts.loss * 100.0,
                loss_opts.retries,
                if loss_opts.blind { ", loss-blind" } else { "" }
            )
        } else {
            String::new()
        },
    );
    if let Some(e) = loss_opts.blackout {
        human!("blackout: the first deployed instance goes dark from epoch {e} onward");
    }
    if probe_focused && candidates.is_none() {
        human!(
            "note: no --candidates given; focused rounds probe a default pool of {} instances \
             (2x nodes) — pass --candidates K or adaptive to control it",
            2 * graph.num_nodes()
        );
    }

    let config = OnlineAdvisorConfig {
        objective,
        migration_budget,
        solve_seconds: 1.0,
        seed,
        candidates,
        probe_policy: if probe_focused {
            ProbePolicy::Focused {
                refresh_every: 8,
                // The escalation threshold must sit well above the
                // detectors' noise-fire baseline (a few percent of
                // measured links per epoch) or every epoch degenerates to
                // a full sweep; a quarter of all pairs separates a global
                // shift from noise at any allocation size.
                max_flagged: outcome.network.len() * (outcome.network.len() - 1) / 8,
            }
        } else {
            ProbePolicy::Uniform
        },
        prune_during_sweep,
        confidence,
        anytime,
        spot_check_probes: spot_check,
        loss_aware: !loss_opts.blind,
        ..OnlineAdvisorConfig::default()
    };
    if anytime && (confidence.is_none() || !prune_during_sweep) {
        human!(
            "note: --anytime needs both --confidence and --prune-during-sweep; the early stop \
             stays off"
        );
    }
    let mut advisor = OnlineAdvisor::new(
        graph.clone(),
        outcome.network.len(),
        outcome.deployment.clone(),
        config,
    );
    if let Some(rec) = recorder {
        advisor.attach_recorder(rec);
    }
    let measure_cfg = MeasureConfig {
        retries_per_pair: if loss_opts.blind { 0 } else { loss_opts.retries },
        stage_workers: sweep_opts.stage_workers,
        sketch_spill_horizon: sweep_opts.sketch_spill,
        ..MeasureConfig::default()
    };
    let mut stream = if lossy {
        SimStream::with_faults(
            outcome.network.clone(),
            Staged::new(3, 2),
            measure_cfg,
            epoch_hours,
            seed ^ 0x011e,
            FaultParams::drifting_loss(loss_opts.loss),
            seed ^ 0xfa11,
        )
    } else {
        SimStream::new(
            outcome.network.clone(),
            Staged::new(3, 2),
            measure_cfg,
            epoch_hours,
            seed ^ 0x011e,
        )
    };

    human!("epoch\thours\test_cost\ttrue_cost\ttriggered\tmoved");
    let report = |summaries: Vec<cloudia::online::EpochSummary>| {
        for s in summaries {
            human!(
                "{}\t{:.1}\t{:.3}\t{:.3}\t{}\t{}",
                s.epoch,
                s.at_hours,
                s.est_cost,
                s.true_cost,
                if s.triggered { "yes" } else { "-" },
                s.moved
            );
        }
    };
    match loss_opts.blackout {
        Some(at) if at < epochs => {
            report(advisor.run(&mut stream, at));
            let victim = advisor.deployment()[0];
            stream.force_instance_dark(victim, (epochs - at + 1) as f64 * epoch_hours);
            human!("# instance {victim} forced dark");
            if let Some(rec) = advisor.recorder_mut() {
                rec.note(&format!("instance {victim} forced dark at epoch {at}"));
            }
            report(advisor.run(&mut stream, epochs - at));
        }
        _ => report(advisor.run(&mut stream, epochs)),
    }
    let migrations =
        advisor.events().iter().filter(|e| matches!(e, OnlineEvent::Migrate { .. })).count();
    let resolves =
        advisor.events().iter().filter(|e| matches!(e, OnlineEvent::Resolve { .. })).count();
    human!(
        "online summary: {resolves} re-solves, {migrations} migrations ({} nodes moved), \
         time-averaged cost {:.3} ms (incl. migration cost {:.3}), {} probe round trips",
        advisor.moved_total(),
        advisor.time_averaged_cost(),
        advisor.migration_cost_paid(),
        advisor.probe_round_trips(),
    );
    let mut summary = cloudia::obs::Json::obj()
        .field("epochs", epochs)
        .field("resolves", resolves)
        .field("migrations", migrations)
        .field("nodes_moved", advisor.moved_total())
        .field("time_averaged_cost", advisor.time_averaged_cost())
        .field("migration_cost_paid", advisor.migration_cost_paid())
        .field("probe_round_trips", advisor.probe_round_trips());
    if let Some(k) = advisor.adaptive_k() {
        human!(
            "adaptive candidate pool: final k = {k} (escalation rate {:.3})",
            advisor.escalation_rate().unwrap_or(0.0)
        );
        summary = summary
            .field("adaptive_k", k)
            .field("escalation_rate", advisor.escalation_rate().unwrap_or(0.0));
    }
    if prune_during_sweep {
        human!(
            "mid-sweep pruning: {} round trips saved, {} re-invested into flagged links",
            advisor.sweep_saved_round_trips(),
            advisor.deep_probe_round_trips(),
        );
        summary = summary
            .field("saved_round_trips", advisor.sweep_saved_round_trips())
            .field("deep_probe_round_trips", advisor.deep_probe_round_trips());
    }
    if spot_check > 0 {
        let (checks, confirmed) =
            advisor.events().iter().fold((0usize, 0usize), |(c, k), e| match e {
                OnlineEvent::SpotCheck { confirmed: true, .. } => (c + 1, k + 1),
                OnlineEvent::SpotCheck { .. } => (c + 1, k),
                _ => (c, k),
            });
        human!("spot checks: {checks} run, {confirmed} confirmed");
        summary = summary.field("spot_checks", checks).field("spot_confirmed", confirmed);
    }
    if lossy {
        let (darks, evacs, moved) =
            advisor.events().iter().fold((0usize, 0usize, 0usize), |(d, e, m), ev| match ev {
                OnlineEvent::LinkDark { .. } => (d + 1, e, m),
                OnlineEvent::Evacuate { moved, .. } => (d, e + 1, m + moved),
                _ => (d, e, m),
            });
        human!("loss triage: {darks} LinkDark events, {evacs} evacuations ({moved} nodes moved)");
        summary = summary
            .field("link_dark_events", darks)
            .field("evacuations", evacs)
            .field("evacuated_nodes", moved);
    }
    (summary, advisor.take_recorder())
}

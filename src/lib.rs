//! # ClouDiA — a deployment advisor for public clouds
//!
//! Umbrella crate re-exporting the whole ClouDiA workspace. This is a
//! from-scratch Rust reproduction of
//!
//! > Tao Zou, Ronan Le Bras, Marcos Vaz Salles, Alan Demers, Johannes
//! > Gehrke. *ClouDiA: a deployment advisor for public clouds.* PVLDB 6(2),
//! > 2012; extended version in the VLDB Journal, 2015.
//!
//! ClouDiA tunes the deployment of latency-sensitive distributed
//! applications on public clouds: it over-allocates instances, measures
//! pairwise latencies, searches for a mapping of application nodes to
//! instances that minimizes either the **longest link** or the **longest
//! path**, and terminates the leftover instances. See the crate-level
//! documentation of the sub-crates for details:
//!
//! * [`netsim`] — the datacenter/network simulator substrate (stands in for
//!   EC2/GCE/Rackspace);
//! * [`measure`] — latency measurement schemes (token passing,
//!   uncoordinated, staged) and estimators;
//! * [`solver`] — the optimization stack: trail-based CP
//!   subgraph-isomorphism search, simplex + branch-and-bound MIP, greedy
//!   and randomized methods, 1-D k-means cost clustering, and a parallel
//!   solver portfolio racing all of them behind one anytime API
//!   (`--search portfolio --threads N` from the CLI);
//! * [`core`] — problem definitions, deployment cost functions, latency
//!   metrics, communication-graph templates, and the advisor pipeline;
//! * [`online`] — the continuous deployment advisor: streaming
//!   measurement, EWMA link statistics with CUSUM/Page–Hinkley drift
//!   detection, and budgeted incremental re-solves
//!   (`--online --epochs N --migration-budget k` from the CLI);
//! * [`workloads`] — the evaluation applications: behavioral simulation,
//!   aggregation query, key-value store.
//!
//! ## Quickstart
//!
//! ```
//! use cloudia::prelude::*;
//!
//! // Boot an EC2-like region and run the full ClouDiA pipeline for a
//! // 5x5-mesh HPC application with 10% over-allocation.
//! let provider = Provider::ec2_like();
//! let graph = CommGraph::mesh_2d(5, 5);
//! let config = AdvisorConfig {
//!     objective: Objective::LongestLink,
//!     over_allocation: 0.1,
//!     ..AdvisorConfig::fast()
//! };
//! let outcome = Advisor::new(config).run(provider, &graph, 42);
//! println!(
//!     "default cost {:.3} ms -> optimized {:.3} ms",
//!     outcome.default_cost, outcome.optimized_cost
//! );
//! assert!(outcome.optimized_cost <= outcome.default_cost);
//! ```

pub use cloudia_core as core;
pub use cloudia_measure as measure;
pub use cloudia_netsim as netsim;
pub use cloudia_obs as obs;
pub use cloudia_online as online;
pub use cloudia_solver as solver;
pub use cloudia_workloads as workloads;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use cloudia_core::advisor::{Advisor, AdvisorConfig, AdvisorOutcome};
    pub use cloudia_core::cost::Objective;
    pub use cloudia_core::metrics::LatencyMetric;
    pub use cloudia_core::problem::{CommGraph, CostMatrix, Deployment, NodeId};
    pub use cloudia_core::search::SearchStrategy;
    pub use cloudia_netsim::{Cloud, InstanceId, Network, Provider};
    pub use cloudia_solver::{solve_portfolio, PortfolioConfig, SolveOutcome};
}

//! Survey latency heterogeneity and stability across the three provider
//! presets (paper Figs. 1-2 and Appendix 3): boot each region, allocate a
//! fleet, and summarize the pairwise mean-latency distribution and the
//! stability of representative links.
//!
//! ```sh
//! cargo run --release --example provider_survey
//! ```

use cloudia::netsim::{Cloud, InstanceId, Provider};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    for provider in [Provider::ec2_like(), Provider::gce_like(), Provider::rackspace_like()] {
        let name = provider.kind.name();
        let mut cloud = Cloud::boot(provider, 9);
        let alloc = cloud.allocate(50);
        let net = cloud.network(&alloc);

        // Pairwise mean RTT distribution.
        let mut means = Vec::new();
        for i in 0..50u32 {
            for j in 0..50u32 {
                if i != j {
                    means.push(net.mean_rtt(InstanceId(i), InstanceId(j)));
                }
            }
        }
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| means[((means.len() - 1) as f64 * p) as usize];
        println!("== {name} (50 instances) ==");
        println!(
            "  mean RTT: p5 {:.3}  p50 {:.3}  p95 {:.3}  max {:.3} ms  (spread {:.1}x)",
            q(0.05),
            q(0.50),
            q(0.95),
            means[means.len() - 1],
            q(0.95) / q(0.05)
        );

        // Stability of a mid-range link over 60 h.
        let mut rng = StdRng::seed_from_u64(1);
        let trace = net.link_trace(InstanceId(0), InstanceId(25), 1.0, 60, 2000, &mut rng);
        println!(
            "  60 h stability of one link: mean {:.3} ms, coefficient of variation {:.1} %",
            trace.mean_rtt.iter().sum::<f64>() / trace.mean_rtt.len() as f64,
            trace.coefficient_of_variation() * 100.0
        );
    }
    println!();
    println!("heterogeneous but stable pairwise latencies -> deployment tuning pays off");
}

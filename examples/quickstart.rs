//! Quickstart: run the full ClouDiA pipeline for a small HPC-style
//! application and print the advised deployment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudia::prelude::*;

fn main() {
    // The tenant's application: a 4x5 mesh of simulation workers (the
    // communication pattern of a partitioned behavioral simulation).
    let graph = CommGraph::mesh_2d(4, 5);
    println!(
        "application: {} nodes, {} directed communication edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // ClouDiA with the paper's defaults: minimize the longest link, use
    // mean latency as cost, over-allocate 10 %.
    let config = AdvisorConfig {
        objective: Objective::LongestLink,
        over_allocation: 0.1,
        search_time_s: 5.0,
        ..AdvisorConfig::fast()
    };
    let advisor = Advisor::new(config);

    // Boot an EC2-like region and run: allocate -> measure -> search ->
    // terminate extras.
    let outcome = advisor.run(Provider::ec2_like(), &graph, 42);

    println!(
        "measurement: {} round trips in {:.0} simulated ms",
        outcome.measurement_round_trips, outcome.measurement_ms
    );
    println!("deployment plan (node -> instance): {:?}", outcome.deployment);
    println!("terminated extra instances: {:?}", outcome.terminated);
    println!(
        "longest link: default {:.3} ms -> optimized {:.3} ms ({:.0} % better)",
        outcome.default_cost,
        outcome.optimized_cost,
        100.0 * outcome.improvement()
    );
}

//! Key-value store tuning (paper §6.1.3): front-end servers multi-get
//! from storage nodes. Neither longest link nor longest path matches the
//! mean response time exactly, yet — as the paper shows — optimizing the
//! longest link still avoids the worst links and improves response time.
//!
//! ```sh
//! cargo run --release --example kv_store_tuning
//! ```

use cloudia::netsim::Cloud;
use cloudia::prelude::*;
use cloudia::workloads::{KvStore, Workload};

fn main() {
    let store = KvStore::new(6, 24); // 6 front-ends, 24 storage nodes
    let graph = store.graph();
    let n = graph.num_nodes();
    println!(
        "key-value store: {} front-ends x {} storage nodes, {} keys/query",
        store.front, store.storage, store.keys_per_query
    );

    let mut cloud = Cloud::boot(Provider::ec2_like(), 33);
    let allocation = cloud.allocate(n + n / 10);
    let network = cloud.network(&allocation);

    // Longest link is an imperfect-but-useful objective here (§3.3, §6.4).
    let advisor = Advisor::new(AdvisorConfig {
        objective: Objective::LongestLink,
        search_time_s: 6.0,
        ..AdvisorConfig::fast()
    });
    let outcome = advisor.run_on_network(&network, &graph, 5);

    let default: Vec<u32> = (0..n as u32).collect();
    let r_default = store.run(&network, &default, 17).value_ms;
    let r_cloudia = store.run(&network, &outcome.deployment, 17).value_ms;

    println!(
        "longest link: default {:.3} ms -> optimized {:.3} ms",
        outcome.default_cost, outcome.optimized_cost
    );
    println!("mean multi-get response (default):  {r_default:.2} ms");
    println!("mean multi-get response (ClouDiA):  {r_cloudia:.2} ms");
    println!(
        "reduction: {:.1} % (paper: 15-31 % for this workload)",
        (r_default - r_cloudia) / r_default * 100.0
    );
}

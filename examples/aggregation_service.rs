//! Aggregation query service (paper §6.1.2): a top-k search service with
//! a two-level aggregation tree; response time is governed by the longest
//! leaf-to-root path, so ClouDiA minimizes the longest-path deployment
//! cost with the MIP solver.
//!
//! ```sh
//! cargo run --release --example aggregation_service
//! ```

use cloudia::netsim::Cloud;
use cloudia::prelude::*;
use cloudia::workloads::{AggregationQuery, Workload};

fn main() {
    let service = AggregationQuery::new(6, 2); // root + 6 + 36 nodes
    let graph = service.graph();
    let n = graph.num_nodes();
    println!("aggregation service: {} nodes, tree depth 2, fanout 6", n);

    let mut cloud = Cloud::boot(Provider::ec2_like(), 21);
    let allocation = cloud.allocate(n + n / 10);
    let network = cloud.network(&allocation);

    let advisor = Advisor::new(AdvisorConfig {
        objective: Objective::LongestPath,
        search_time_s: 8.0,
        ..AdvisorConfig::fast()
    });
    let outcome = advisor.run_on_network(&network, &graph, 3);

    let default: Vec<u32> = (0..n as u32).collect();
    let r_default = service.run(&network, &default, 11).value_ms;
    let r_cloudia = service.run(&network, &outcome.deployment, 11).value_ms;

    println!(
        "longest path (mean latencies): default {:.3} ms -> optimized {:.3} ms",
        outcome.default_cost, outcome.optimized_cost
    );
    println!("mean query response (default):  {r_default:.2} ms");
    println!("mean query response (ClouDiA):  {r_cloudia:.2} ms");
    println!("reduction: {:.1} %", (r_default - r_cloudia) / r_default * 100.0);
}

//! Behavioral simulation (paper §6.1.1): a fish-school simulation
//! partitioned over a 2D mesh, barrier-synchronized every tick. Shows the
//! end-to-end benefit of a ClouDiA deployment on time-to-solution by
//! actually running the workload model under both deployments.
//!
//! ```sh
//! cargo run --release --example behavioral_simulation
//! ```

use cloudia::netsim::Cloud;
use cloudia::prelude::*;
use cloudia::workloads::{BehavioralSim, Workload};

fn main() {
    let sim = BehavioralSim::new(6, 6); // 36 regions, 100 K ticks
    let graph = sim.graph();
    let n = graph.num_nodes();

    // Allocate with 10 % extra instances.
    let mut cloud = Cloud::boot(Provider::ec2_like(), 7);
    let allocation = cloud.allocate(n + n / 10);
    let network = cloud.network(&allocation);

    // ClouDiA: measure + search (CP on longest link).
    let advisor = Advisor::new(AdvisorConfig {
        objective: Objective::LongestLink,
        search_time_s: 5.0,
        ..AdvisorConfig::fast()
    });
    let outcome = advisor.run_on_network(&network, &graph, 7);

    // Execute the simulation under both deployments.
    let default: Vec<u32> = (0..n as u32).collect();
    let t_default = sim.run(&network, &default, 1).value_ms;
    let t_cloudia = sim.run(&network, &outcome.deployment, 1).value_ms;

    println!("fish-school simulation, {n}-node mesh, {} ticks", sim.total_ticks);
    println!(
        "longest mean link: default {:.3} ms -> optimized {:.3} ms",
        outcome.default_cost, outcome.optimized_cost
    );
    println!("time-to-solution (default):  {:.1} s", t_default / 1000.0);
    println!("time-to-solution (ClouDiA):  {:.1} s", t_cloudia / 1000.0);
    println!(
        "reduction: {:.1} % (paper band for this workload: 15-55 %)",
        (t_default - t_cloudia) / t_default * 100.0
    );
}
